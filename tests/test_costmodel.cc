// Unit tests: roofline kernel model, comm model, OLS, profiler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "costmodel/attention_model.h"
#include "costmodel/comm_model.h"
#include "costmodel/kernel_model.h"
#include "costmodel/ols.h"
#include "costmodel/profiler.h"
#include "hw/topology.h"
#include "model/llm.h"

namespace hetis::costmodel {
namespace {

using hw::GpuType;

const hw::GpuSpec& a100() { return hw::gpu_spec(GpuType::kA100_80G); }
const hw::GpuSpec& p100() { return hw::gpu_spec(GpuType::kP100); }

// --- KernelModel ---

TEST(KernelModel, DenseTimeMonotoneInTokens) {
  KernelModel k;
  const auto& m = model::llama_13b();
  Seconds prev = 0;
  for (std::int64_t tokens : {1, 16, 128, 1024, 8192}) {
    Seconds t = k.dense_layer_time(a100(), m, tokens);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(KernelModel, DenseTimeZeroTokens) {
  KernelModel k;
  EXPECT_DOUBLE_EQ(k.dense_layer_time(a100(), model::llama_13b(), 0), 0.0);
}

TEST(KernelModel, TpShrinksDenseTime) {
  KernelModel k;
  const auto& m = model::llama_70b();
  Seconds t1 = k.dense_layer_time(a100(), m, 4096, 1);
  Seconds t4 = k.dense_layer_time(a100(), m, 4096, 4);
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 5.0);  // not super-linear
}

TEST(KernelModel, RooflineLowerBounds) {
  // Time can never beat either the compute or the memory bound.
  KernelModel k;
  const auto& m = model::opt_30b();
  model::Work w = model::dense_layer_work(m, 256);
  Seconds t = k.dense_time(a100(), w);
  EXPECT_GE(t, w.flops / a100().eff_flops());
  EXPECT_GE(t, static_cast<double>(w.weight_bytes) / a100().eff_dense_bw());
}

TEST(KernelModel, PrefillComputeBoundDecodeMemoryBound) {
  const auto& m = model::llama_13b();
  // Large prefill: compute term dominates on A100.
  model::Work prefill = model::dense_layer_work(m, 8192);
  EXPECT_GT(prefill.flops / a100().eff_flops(),
            static_cast<double>(prefill.weight_bytes + prefill.act_bytes) / a100().eff_dense_bw());
  // Small decode: memory term dominates.
  model::Work decode = model::dense_layer_work(m, 8);
  EXPECT_LT(decode.flops / a100().eff_flops(),
            static_cast<double>(decode.weight_bytes) / a100().eff_dense_bw());
}

TEST(KernelModel, Table1DeviceOrdering) {
  // The paper's Table 1 gaps: P100 >> 3090 > A100 for both phases.
  KernelModel k;
  const auto& m = model::opt_2_7b();
  std::vector<std::int64_t> decode_ctxs(25, 256);
  for (bool prefill : {true, false}) {
    auto time_of = [&](const hw::GpuSpec& g) {
      if (prefill) {
        return k.dense_layer_time(g, m, 3 * 256) * m.layers;
      }
      return (k.dense_layer_time(g, m, 25) +
              k.decode_attention_time(g, m, decode_ctxs, m.heads)) *
             m.layers;
    };
    Seconds ta = time_of(a100());
    Seconds t3 = time_of(hw::gpu_spec(GpuType::kRTX3090));
    Seconds tp = time_of(p100());
    EXPECT_LT(ta, t3);
    EXPECT_LT(t3, tp);
  }
}

TEST(KernelModel, AttentionOccupancyMonotone) {
  double prev = 0;
  for (double h : {1.0, 8.0, 32.0, 96.0, 512.0}) {
    double occ = KernelModel::attention_occupancy(h);
    EXPECT_GE(occ, prev);
    EXPECT_LE(occ, 1.0);
    prev = occ;
  }
  EXPECT_DOUBLE_EQ(KernelModel::attention_occupancy(1e9), 1.0);
}

TEST(KernelModel, DecodeAttentionLinearInContext) {
  // Fig. 7(b): attention time grows linearly with cache size.
  KernelModel k;
  const auto& m = model::opt_30b();
  std::vector<std::int64_t> short_ctx(64, 500), long_ctx(64, 1000);
  Seconds t_short = k.decode_attention_time(a100(), m, short_ctx, 8);
  Seconds t_long = k.decode_attention_time(a100(), m, long_ctx, 8);
  // Doubling context roughly doubles the KV streaming term.
  EXPECT_GT(t_long, 1.6 * t_short);
  EXPECT_LT(t_long, 2.4 * t_short);
}

TEST(KernelModel, DecodeAttentionGrowsWithHeads) {
  // Fig. 7(c): more heads -> more time even at fixed total cache.
  KernelModel k;
  const auto& m = model::opt_30b();
  // Fixed cache: ctx * heads constant (9600 head-tokens per seq).
  std::vector<std::int64_t> ctx_few(64, 1200), ctx_many(64, 300);
  Seconds t_few = k.decode_attention_time(a100(), m, ctx_few, 8);    // 8 heads
  Seconds t_many = k.decode_attention_time(a100(), m, ctx_many, 32);  // 4x heads
  EXPECT_GT(t_many, t_few);
}

TEST(KernelModel, AttentionBatchInvariantInRequestCount) {
  // Fig. 7(a): with total heads and cache fixed, splitting the same work
  // across more requests leaves time nearly unchanged.
  KernelModel k;
  const auto& m = model::opt_30b();
  std::vector<std::int64_t> few(100, 1200);
  std::vector<std::int64_t> many(200, 600);
  Seconds t_few = k.decode_attention_time(a100(), m, few, 16);
  Seconds t_many = k.decode_attention_time(a100(), m, many, 16);
  // Same head count per request, same total cache => within a few percent
  // (the act_bytes term differs slightly).
  EXPECT_NEAR(t_many / t_few, 1.0, 0.35);
}

TEST(KernelModel, MismatchedBatchArraysThrow) {
  KernelModel k;
  const auto& m = model::opt_30b();
  EXPECT_THROW(k.decode_attention_time(a100(), m, {100, 200}, std::vector<int>{8}),
               std::invalid_argument);
}

TEST(KernelModel, EmptyBatchesAreFree) {
  KernelModel k;
  const auto& m = model::opt_30b();
  EXPECT_DOUBLE_EQ(k.decode_attention_time(a100(), m, {}, 8), 0.0);
  EXPECT_DOUBLE_EQ(k.prefill_attention_time(a100(), m, {}, 8), 0.0);
}

// --- CommModel ---

TEST(CommModel, P2pUsesLinkModel) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  CommModel comm(c);
  // Inter-host: 100 Gbps + 20 us.
  Seconds t = comm.p2p(0, 11, 125'000'000);
  EXPECT_NEAR(t, 0.01 + 20e-6, 1e-6);
  EXPECT_DOUBLE_EQ(comm.p2p(3, 3, 1 * GiB), 0.0);
}

TEST(CommModel, AllreduceScalesWithGroup) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  CommModel comm(c);
  std::vector<int> tp2{0, 1}, tp4{0, 1, 2, 3};
  Bytes bytes = 64 * MiB;
  Seconds t2 = comm.allreduce(tp2, bytes);
  Seconds t4 = comm.allreduce(tp4, bytes);
  EXPECT_GT(t4, t2);  // more latency terms
  EXPECT_DOUBLE_EQ(comm.allreduce({0}, bytes), 0.0);
}

TEST(CommModel, CrossHostAllreduceSlower) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  CommModel comm(c);
  std::vector<int> intra{4, 5};   // same 3090 host
  std::vector<int> cross{4, 6};   // different 3090 hosts
  Bytes bytes = 16 * MiB;
  EXPECT_LT(comm.allreduce(intra, bytes), comm.allreduce(cross, bytes));
}

TEST(CommModel, AllgatherCheaperThanAllreduce) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  CommModel comm(c);
  std::vector<int> group{0, 1, 2, 3};
  Bytes bytes = 32 * MiB;
  EXPECT_LT(comm.allgather(group, bytes), comm.allreduce(group, bytes));
}

TEST(CommModel, HeadwiseVolumeMatchesPaperFormula) {
  // d = (2 + 2/r) * h * head_dim * dtype.
  const auto& m = model::llama_70b();  // r=8, d_head=128
  Bytes vol = CommModel::headwise_bytes_per_token(m, 16);
  EXPECT_EQ(vol, static_cast<Bytes>((2.0 + 2.0 / 8.0) * 16 * 128 * 2));
}

TEST(CommModel, HeadwiseBeatsSeqwise) {
  // Fig. 5: head-wise communication is strictly cheaper at partial offload.
  const auto& m = model::llama_70b();
  for (double ratio : {0.2, 0.4, 0.6, 0.8}) {
    Bytes head = CommModel::headwise_bytes_per_token(m, ratio * m.heads);
    Bytes seq = CommModel::seqwise_bytes_per_token(m, 1);
    EXPECT_LT(head, seq) << "offload ratio " << ratio;
  }
}

TEST(CommModel, SeqwiseGrowsWithWorkers) {
  const auto& m = model::llama_70b();
  Bytes w1 = CommModel::seqwise_bytes_per_token(m, 1);
  Bytes w4 = CommModel::seqwise_bytes_per_token(m, 4);
  EXPECT_GT(w4, 3 * w1);
}

TEST(CommModel, OffloadTimesPositive) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  CommModel comm(c);
  const auto& m = model::llama_70b();
  Seconds head = comm.headwise_offload_time(m, 0, 8, 16);
  Seconds seq = comm.seqwise_offload_time(m, 0, {8, 9, 10, 11});
  EXPECT_GT(head, 0);
  EXPECT_GT(seq, head);
  EXPECT_DOUBLE_EQ(comm.headwise_offload_time(m, 0, 8, 0), 0.0);
}

// --- OLS ---

TEST(Ols, RecoversExactLinearModel) {
  // y = 3x1 + 5x2 + 7.
  std::vector<double> xs, ys;
  for (double x1 : {1.0, 2.0, 4.0, 8.0}) {
    for (double x2 : {1.0, 3.0, 9.0}) {
      xs.insert(xs.end(), {x1, x2, 1.0});
      ys.push_back(3 * x1 + 5 * x2 + 7);
    }
  }
  auto beta = ols_fit(xs, ys.size(), 3, ys);
  EXPECT_NEAR(beta[0], 3.0, 1e-8);
  EXPECT_NEAR(beta[1], 5.0, 1e-8);
  EXPECT_NEAR(beta[2], 7.0, 1e-8);
  // The stabilizing ridge leaves a ~1e-11 bias; exactness up to that.
  EXPECT_NEAR(r_squared(xs, ys.size(), 3, ys, beta), 1.0, 1e-9);
  EXPECT_NEAR(mape_accuracy(xs, ys.size(), 3, ys, beta), 1.0, 1e-9);
}

TEST(Ols, ShapeErrors) {
  EXPECT_THROW(ols_fit({1.0, 2.0}, 1, 3, {1.0}), std::invalid_argument);
  EXPECT_THROW(ols_fit({1.0, 2.0}, 2, 1, {1.0}), std::invalid_argument);
  // Underdetermined.
  EXPECT_THROW(ols_fit({1.0, 2.0}, 1, 2, {1.0}), std::invalid_argument);
}

TEST(Ols, NoisyFitStillAccurate) {
  Rng rng(77);
  std::vector<double> xs, ys;
  for (int i = 0; i < 64; ++i) {
    double x = rng.uniform(1.0, 100.0);
    xs.insert(xs.end(), {x, 1.0});
    ys.push_back((2.5 * x + 10.0) * (1.0 + rng.normal(0, 0.02)));
  }
  auto beta = ols_fit(xs, ys.size(), 2, ys);
  EXPECT_NEAR(beta[0], 2.5, 0.15);
  EXPECT_GT(mape_accuracy(xs, ys.size(), 2, ys, beta), 0.9);
}

TEST(Ols, CollinearColumnsHandledByRidge) {
  // x2 = 2*x1 exactly: the ridge keeps the solve well-defined.
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    xs.insert(xs.end(), {x, 2 * x});
    ys.push_back(10 * x);
  }
  auto beta = ols_fit(xs, ys.size(), 2, ys);
  // Prediction quality is what matters, not coefficient identifiability.
  EXPECT_GT(mape_accuracy(xs, ys.size(), 2, ys, beta), 0.999);
}

// --- Attention model & transfer volume ---

TEST(AttnParams, LinearEvaluation) {
  AttnParams p{1e-6, 1e-9, 5e-6};
  EXPECT_DOUBLE_EQ(p.time(10, 1000), 1e-5 + 1e-6 + 5e-6);
  EXPECT_DOUBLE_EQ(p.time(0, 1000), 0.0);  // no heads, no work
}

TEST(AttnParams, Perturbation) {
  AttnParams p{1.0, 2.0, 3.0};
  AttnParams q = p.perturbed(0.1, -0.1, 0.2);
  EXPECT_DOUBLE_EQ(q.a, 1.1);
  EXPECT_DOUBLE_EQ(q.b, 1.8);
  EXPECT_DOUBLE_EQ(q.c, 3.6);
}

TEST(TransferVolume, ScalesWithHeadsAndLayers) {
  const auto& m = model::llama_70b();
  Bytes v8 = transfer_volume(m, 8);
  Bytes v16 = transfer_volume(m, 16);
  EXPECT_EQ(v16, 2 * v8);
  EXPECT_EQ(transfer_volume(m, 0), 0);
  // All-layer volume = per-layer volume * layers.
  EXPECT_EQ(v8, CommModel::headwise_bytes_per_token(m, 8) * m.layers);
}

// --- Profiler ---

class ProfilerTest : public ::testing::TestWithParam<GpuType> {};

TEST_P(ProfilerTest, FitAccuracyMatchesPaperRange) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Profiler profiler(c, model::opt_30b());
  int device = c.devices_of_type(GetParam()).front();
  DeviceProfile prof = profiler.profile_device(device);
  // §7.4: computation accuracy up to 93.8% -> our fits should exceed ~85%.
  EXPECT_GT(prof.attn_accuracy, 0.85) << hw::to_string(GetParam());
  EXPECT_GT(prof.attn_r2, 0.95);
  EXPECT_GE(prof.attn.a, 0.0);
  EXPECT_GE(prof.attn.b, 0.0);
  EXPECT_GE(prof.attn.c, 0.0);
  EXPECT_GT(prof.attn.a + prof.attn.b, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PaperGpus, ProfilerTest,
                         ::testing::Values(GpuType::kA100_80G, GpuType::kRTX3090,
                                           GpuType::kP100),
                         [](const auto& info) { return hw::to_string(info.param); });

TEST(Profiler, TransferFitNearPerfect) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Profiler profiler(c, model::llama_70b());
  LinkProfile lp = profiler.profile_link(0, 8);  // A100 -> P100, inter-host
  // §7.4: transfer accuracy 92.4%-96.1%.
  EXPECT_GT(lp.transfer_accuracy, 0.9);
  EXPECT_GT(lp.transfer.gamma, 0.0);
}

TEST(Profiler, ProfileAllCoversEverything) {
  hw::Cluster c = hw::Cluster::ablation_cluster();
  Profiler profiler(c, model::llama_13b());
  ProfileResult res = profiler.profile_all();
  EXPECT_EQ(res.devices.size(), 3u);
  EXPECT_EQ(res.links.size(), 6u);  // 3 devices, ordered pairs
  EXPECT_TRUE(res.has_link(0, 1));
  EXPECT_FALSE(res.has_link(0, 0));
}

TEST(Profiler, GroundTruthMonotone) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Profiler profiler(c, model::opt_30b());
  Seconds t1 = profiler.ground_truth_attention(0, 100, 1e8);
  Seconds t2 = profiler.ground_truth_attention(0, 100, 2e8);
  Seconds t3 = profiler.ground_truth_attention(0, 200, 2e8);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(Profiler, FasterDeviceFitsFasterModel) {
  hw::Cluster c = hw::Cluster::paper_cluster();
  Profiler profiler(c, model::opt_30b());
  DeviceProfile a = profiler.profile_device(0);   // A100
  DeviceProfile p = profiler.profile_device(8);   // P100
  // For the same moderate load, the P100's predicted time must be larger.
  double h = 512, g = 5e8;
  EXPECT_GT(p.attn.time(h, g), a.attn.time(h, g));
}

}  // namespace
}  // namespace hetis::costmodel
