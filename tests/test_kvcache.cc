// Unit + property tests: paged allocator, block tables, index builders,
// migration planning.
#include <gtest/gtest.h>

#include <numeric>

#include "common/thread_pool.h"
#include "kvcache/allocator.h"
#include "kvcache/block_table.h"
#include "kvcache/index_builder.h"
#include "kvcache/migration.h"
#include "model/llm.h"

namespace hetis::kvcache {
namespace {

// --- BlockAllocator ---

TEST(Allocator, CapacityMath) {
  BlockAllocator a(1000, 100);
  EXPECT_EQ(a.total_blocks(), 10u);
  EXPECT_EQ(a.free_blocks_count(), 10u);
  EXPECT_EQ(a.capacity(), 1000);
  EXPECT_EQ(a.block_bytes(), 100);
}

TEST(Allocator, AllocateFreeRoundTrip) {
  BlockAllocator a(1000, 100);
  auto b = a.allocate();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a.used_blocks(), 1u);
  a.free_block(*b);
  EXPECT_EQ(a.used_blocks(), 0u);
}

TEST(Allocator, AscendingIdOrder) {
  BlockAllocator a(400, 100);
  EXPECT_EQ(*a.allocate(), 0);
  EXPECT_EQ(*a.allocate(), 1);
  EXPECT_EQ(*a.allocate(), 2);
}

TEST(Allocator, ExhaustionReturnsNullopt) {
  BlockAllocator a(200, 100);
  EXPECT_TRUE(a.allocate().has_value());
  EXPECT_TRUE(a.allocate().has_value());
  EXPECT_FALSE(a.allocate().has_value());
}

TEST(Allocator, AllocateNAllOrNothing) {
  BlockAllocator a(300, 100);
  auto blocks = a.allocate_n(4);  // more than capacity
  EXPECT_TRUE(blocks.empty());
  EXPECT_EQ(a.used_blocks(), 0u);  // nothing leaked
  blocks = a.allocate_n(3);
  EXPECT_EQ(blocks.size(), 3u);
}

TEST(Allocator, DoubleFreeDetected) {
  BlockAllocator a(200, 100);
  BlockId b = *a.allocate();
  a.free_block(b);
  EXPECT_THROW(a.free_block(b), std::logic_error);
}

TEST(Allocator, ForeignFreeDetected) {
  BlockAllocator a(200, 100);
  EXPECT_THROW(a.free_block(99), std::out_of_range);
  EXPECT_THROW(a.free_block(-1), std::out_of_range);
}

TEST(Allocator, BadConstruction) {
  EXPECT_THROW(BlockAllocator(100, 0), std::invalid_argument);
  EXPECT_THROW(BlockAllocator(-5, 10), std::invalid_argument);
}

TEST(Allocator, UtilizationFraction) {
  BlockAllocator a(1000, 100);
  a.allocate_n(5);
  EXPECT_DOUBLE_EQ(a.utilization(), 0.5);
}

// --- TokenBlockTable ---

TEST(TokenTable, AddAndSlotLookup) {
  BlockAllocator a(16 * 1024, 16);  // 1024 blocks of 16 "token slots"
  TokenBlockTable t(a, 16);
  ASSERT_TRUE(t.add_sequence(7, 40));
  EXPECT_EQ(t.length(7), 40);
  EXPECT_EQ(t.blocks(7).size(), 3u);  // ceil(40/16)
  // Slot = block_id * 16 + offset.
  EXPECT_EQ(t.slot(7, 0), static_cast<std::int64_t>(t.blocks(7)[0]) * 16);
  EXPECT_EQ(t.slot(7, 17), static_cast<std::int64_t>(t.blocks(7)[1]) * 16 + 1);
}

TEST(TokenTable, AppendCrossesBlockBoundary) {
  BlockAllocator a(16 * 64, 16);
  TokenBlockTable t(a, 16);
  ASSERT_TRUE(t.add_sequence(1, 16));
  EXPECT_EQ(t.blocks(1).size(), 1u);
  ASSERT_TRUE(t.append_token(1));
  EXPECT_EQ(t.blocks(1).size(), 2u);
  EXPECT_EQ(t.length(1), 17);
}

TEST(TokenTable, RemoveFreesBlocks) {
  BlockAllocator a(16 * 8, 16);
  TokenBlockTable t(a, 16);
  ASSERT_TRUE(t.add_sequence(1, 100));
  std::size_t used = a.used_blocks();
  EXPECT_GT(used, 0u);
  t.remove_sequence(1);
  EXPECT_EQ(a.used_blocks(), 0u);
  EXPECT_FALSE(t.contains(1));
}

TEST(TokenTable, OutOfMemoryAddFails) {
  BlockAllocator a(16 * 2, 16);  // 2 blocks = 32 tokens
  TokenBlockTable t(a, 16);
  EXPECT_FALSE(t.add_sequence(1, 100));
  EXPECT_EQ(a.used_blocks(), 0u);
}

TEST(TokenTable, Errors) {
  BlockAllocator a(16 * 8, 16);
  TokenBlockTable t(a, 16);
  ASSERT_TRUE(t.add_sequence(1, 10));
  EXPECT_THROW(t.add_sequence(1, 5), std::logic_error);  // duplicate
  EXPECT_THROW(t.length(2), std::out_of_range);
  EXPECT_THROW(t.slot(1, 10), std::out_of_range);  // past end
  EXPECT_THROW(t.slot(1, -1), std::out_of_range);
}

// --- HeadBlockTable ---

TEST(HeadTable, GroupsAreIndependent) {
  BlockAllocator a(16 * 1024, 16);
  HeadBlockTable t(a, 16);
  ASSERT_TRUE(t.add_groups(1, {0, 2, 5}, 20));
  EXPECT_EQ(t.groups_of(1), (std::vector<int>{0, 2, 5}));
  EXPECT_TRUE(t.has_group(1, 2));
  EXPECT_FALSE(t.has_group(1, 1));
  EXPECT_EQ(t.length(1), 20);
  // Each group has its own blocks.
  EXPECT_NE(t.slot(1, 0, 3), t.slot(1, 2, 3));
}

TEST(HeadTable, AppendGrowsEveryGroup) {
  BlockAllocator a(16 * 1024, 16);
  HeadBlockTable t(a, 16);
  ASSERT_TRUE(t.add_groups(1, {0, 1}, 16));
  std::size_t before = a.used_blocks();
  ASSERT_TRUE(t.append_token(1));  // crosses boundary for both groups
  EXPECT_EQ(a.used_blocks(), before + 2);
  EXPECT_EQ(t.length(1), 17);
}

TEST(HeadTable, AppendAllOrNothing) {
  BlockAllocator a(16 * 3, 16);  // 3 blocks only
  HeadBlockTable t(a, 16);
  ASSERT_TRUE(t.add_groups(1, {0, 1}, 16));  // uses 2 blocks
  // Appending needs 2 new blocks but only 1 is free.
  EXPECT_FALSE(t.append_token(1));
  EXPECT_EQ(t.length(1), 16);          // unchanged
  EXPECT_EQ(a.used_blocks(), 2u);      // no partial allocation
}

TEST(HeadTable, AddGroupsRollsBackOnOom) {
  BlockAllocator a(16 * 3, 16);
  HeadBlockTable t(a, 16);
  // 4 groups x 1 block each needed, only 3 available.
  EXPECT_FALSE(t.add_groups(1, {0, 1, 2, 3}, 10));
  EXPECT_EQ(a.used_blocks(), 0u);
  EXPECT_FALSE(t.contains(1));
}

TEST(HeadTable, RemoveGroupFreesOnlyThatShare) {
  BlockAllocator a(16 * 64, 16);
  HeadBlockTable t(a, 16);
  ASSERT_TRUE(t.add_groups(1, {0, 1, 2}, 32));  // 2 blocks each
  t.remove_group(1, 1);
  EXPECT_EQ(t.groups_of(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(a.used_blocks(), 4u);
  t.remove_sequence(1);
  EXPECT_EQ(a.used_blocks(), 0u);
}

TEST(HeadTable, LengthMismatchThrows) {
  BlockAllocator a(16 * 64, 16);
  HeadBlockTable t(a, 16);
  ASSERT_TRUE(t.add_groups(1, {0}, 10));
  EXPECT_THROW(t.add_groups(1, {1}, 12), std::logic_error);
  EXPECT_THROW(t.add_groups(1, {0}, 10), std::logic_error);  // already hosted
}

TEST(HeadTable, StorageOpsCountBlocks) {
  BlockAllocator a(16 * 1024, 16);
  HeadBlockTable t(a, 16);
  ASSERT_TRUE(t.add_groups(1, {0, 1, 2, 3}, 16));  // 4 allocations
  EXPECT_EQ(t.storage_ops(), 4u);
  ASSERT_TRUE(t.append_token(1));  // 4 more
  EXPECT_EQ(t.storage_ops(), 8u);
}

// --- Index builders ---

TEST(IndexBuilder, TokenIndexMatchesSlotLookups) {
  BlockAllocator a(16 * 1024, 16);
  TokenBlockTable t(a, 16);
  ASSERT_TRUE(t.add_sequence(1, 37));
  ASSERT_TRUE(t.add_sequence(2, 5));
  std::vector<GatherItem> items{{1, 0, 37}, {2, 0, 5}};
  GatherPlan plan = build_token_index(t, items);
  ASSERT_EQ(plan.num_items(), 2u);
  ASSERT_EQ(plan.slots.size(), 42u);
  for (std::int64_t pos = 0; pos < 37; ++pos) {
    EXPECT_EQ(plan.slots[static_cast<std::size_t>(pos)], t.slot(1, pos));
  }
  for (std::int64_t pos = 0; pos < 5; ++pos) {
    EXPECT_EQ(plan.slots[plan.item_offsets[1] + static_cast<std::size_t>(pos)], t.slot(2, pos));
  }
}

class IndexParallelism : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IndexParallelism, SerialAndParallelAgree) {
  auto [n_seqs, threads] = GetParam();
  BlockAllocator a(64ll * MiB, 16);
  HeadBlockTable t(a, 16);
  std::vector<GatherItem> items;
  for (int s = 0; s < n_seqs; ++s) {
    std::int64_t len = 7 + 13 * s % 200;
    std::vector<int> groups{0, 1, 2};
    ASSERT_TRUE(t.add_groups(s, groups, len));
    for (int g : groups) items.push_back(GatherItem{s, g, len});
  }
  GatherPlan serial = build_head_index_serial(t, items);
  ThreadPool pool(static_cast<std::size_t>(threads));
  GatherPlan parallel = build_head_index_parallel(t, items, pool);
  EXPECT_EQ(serial.item_offsets, parallel.item_offsets);
  EXPECT_EQ(serial.slots, parallel.slots);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndexParallelism,
                         ::testing::Combine(::testing::Values(1, 4, 32, 200),
                                            ::testing::Values(1, 2, 8)));

TEST(IndexBuilder, EmptyItems) {
  BlockAllocator a(16 * 64, 16);
  HeadBlockTable t(a, 16);
  GatherPlan plan = build_head_index_serial(t, {});
  EXPECT_EQ(plan.num_items(), 0u);
  EXPECT_TRUE(plan.slots.empty());
}

// --- Migration planning ---

TEST(Migration, GroupCacheBytesFormula) {
  const auto& m = model::llama_70b();
  // 2 (K+V) * head_dim * dtype * len * layers.
  EXPECT_EQ(group_cache_bytes(m, 100), static_cast<Bytes>(2) * 128 * 2 * 100 * 80);
}

TEST(Migration, OnlyChangedGroupsMove) {
  const auto& m = model::llama_13b();
  Placement from{{0, {0, 1, 2, 3}}, {1, {4, 5}}};
  Placement to{{0, {0, 1}}, {1, {4, 5, 2, 3}}};
  MigrationPlan plan = plan_migration(m, 9, 50, from, to);
  EXPECT_EQ(plan.groups_moved, 2);   // groups 2, 3
  EXPECT_EQ(plan.groups_reused, 4);  // 0, 1, 4, 5
  EXPECT_EQ(plan.total_bytes, 2 * group_cache_bytes(m, 50));
  for (const auto& mv : plan.moves) {
    EXPECT_EQ(mv.src, 0);
    EXPECT_EQ(mv.dst, 1);
  }
}

TEST(Migration, IdenticalPlacementIsFree) {
  const auto& m = model::llama_13b();
  Placement p{{0, {0, 1}}, {2, {2}}};
  MigrationPlan plan = plan_migration(m, 1, 10, p, p);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.groups_reused, 3);
}

TEST(Migration, ConjuredGroupThrows) {
  const auto& m = model::llama_13b();
  Placement from{{0, {0}}};
  Placement to{{0, {0, 1}}};  // group 1 doesn't exist in `from`
  EXPECT_THROW(plan_migration(m, 1, 10, from, to), std::invalid_argument);
}

TEST(Migration, DuplicateGroupThrows) {
  const auto& m = model::llama_13b();
  Placement bad{{0, {0, 1}}, {1, {1}}};
  Placement to{{0, {0, 1}}};
  EXPECT_THROW(plan_migration(m, 1, 10, bad, to), std::invalid_argument);
}

TEST(Migration, OverlapPreservingAssignmentMinimizesMoves) {
  Placement from{{0, {0, 1, 2, 3}}, {1, {4, 5}}};
  std::map<int, int> new_counts{{0, 2}, {1, 2}, {2, 2}};
  Placement out = assign_groups_preserving_overlap(from, new_counts);
  // Device 0 keeps 2 of its old groups; device 1 keeps both.
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[1], (std::vector<int>{4, 5}));
  EXPECT_EQ(out[2].size(), 2u);
  // All six groups placed exactly once.
  std::set<int> all;
  for (auto& [dev, gs] : out) all.insert(gs.begin(), gs.end());
  EXPECT_EQ(all.size(), 6u);
}

TEST(Migration, CountMismatchThrows) {
  Placement from{{0, {0, 1}}};
  std::map<int, int> bad{{0, 3}};
  EXPECT_THROW(assign_groups_preserving_overlap(from, bad), std::invalid_argument);
}

}  // namespace
}  // namespace hetis::kvcache
