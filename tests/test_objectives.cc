// Unit tests: pluggable plan objectives and the PlanEvaluator layer
// (parallel/objective.h, parallel/evaluator.h) plus their wiring through
// the engine, the control plane and the harness.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "control/controller.h"
#include "engine/registry.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "hetis/hetis_engine.h"
#include "model/llm.h"
#include "parallel/evaluator.h"
#include "parallel/objective.h"
#include "parallel/parallelizer.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace hetis {
namespace {

parallel::WorkloadProfile default_profile() {
  parallel::WorkloadProfile p;
  p.prefill_tokens = 4096;
  p.decode_batch = 64;
  p.mean_context = 512;
  p.decode_weight = 256;
  return p;
}

bool plans_equal(const parallel::ParallelPlan& a, const parallel::ParallelPlan& b) {
  if (a.instances.size() != b.instances.size()) return false;
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    const auto& ia = a.instances[i];
    const auto& ib = b.instances[i];
    if (ia.attention_workers != ib.attention_workers) return false;
    if (ia.stages.size() != ib.stages.size()) return false;
    for (std::size_t k = 0; k < ia.stages.size(); ++k) {
      if (ia.stages[k].devices != ib.stages[k].devices) return false;
      if (ia.stages[k].layers != ib.stages[k].layers) return false;
    }
  }
  return true;
}

// --- Factory ----------------------------------------------------------------

TEST(Objective, FactoryKnowsAllNames) {
  const std::vector<std::string> names = parallel::objective_names();
  for (const std::string& name : names) {
    auto obj = parallel::make_objective(name);
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->name(), name);
  }
  EXPECT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Objective, UnknownNameThrowsListingKnown) {
  try {
    parallel::make_objective("oracle");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("oracle"), std::string::npos);
    EXPECT_NE(msg.find("latency"), std::string::npos);
    EXPECT_NE(msg.find("throughput"), std::string::npos);
  }
}

TEST(Objective, ThroughputScoresIterationCost) {
  parallel::PlanEstimate e;
  e.ttft = 0.5;
  e.tpot = 0.01;
  e.decode_weight = 256;
  auto obj = parallel::make_objective("throughput");
  EXPECT_DOUBLE_EQ(obj->score(e), 0.5 + 256 * 0.01);
  EXPECT_FALSE(obj->explores_depth());
}

TEST(Objective, LatencyIsSloAware) {
  parallel::PlanEstimate fast_ttft_bad_tpot;
  fast_ttft_bad_tpot.ttft = 0.2;
  fast_ttft_bad_tpot.tpot = 0.4;  // blows a 0.1s TPOT target 4x
  parallel::PlanEstimate balanced;
  balanced.ttft = 0.3;
  balanced.tpot = 0.05;

  auto plain = parallel::make_objective("latency");
  EXPECT_LT(plain->score(fast_ttft_bad_tpot), plain->score(balanced));

  engine::SloSpec slo;
  slo.tpot = 0.1;
  auto slo_aware = parallel::make_objective("latency", slo);
  // The TPOT overshoot penalty flips the ordering.
  EXPECT_GT(slo_aware->score(fast_ttft_bad_tpot), slo_aware->score(balanced));
  EXPECT_TRUE(slo_aware->explores_depth());
}

TEST(Objective, GoodputPerDevicePrefersLeanerPlans) {
  parallel::PlanEstimate wide;
  wide.throughput = 10;
  wide.device_count = 12;
  parallel::PlanEstimate lean;
  lean.throughput = 5;
  lean.device_count = 2;
  auto obj = parallel::make_objective("goodput_per_device");
  // 5/2 req per device-second beats 10/12; lower score wins.
  EXPECT_LT(obj->score(lean), obj->score(wide));
  EXPECT_LT(obj->score(lean), 0) << "maximizing objectives score negative";
}

// --- PlanEvaluator ----------------------------------------------------------

TEST(PlanEvaluator, EstimatesArePhysical) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::llama_13b();
  parallel::Parallelizer par(cluster, model);
  parallel::ParallelPlan plan = par.plan(default_profile());

  parallel::PlanEvaluator evaluator(cluster, model);
  parallel::PlanEstimate e = evaluator.evaluate(plan, default_profile());
  EXPECT_GT(e.ttft, 0);
  EXPECT_GT(e.tpot, 0);
  EXPECT_GT(e.throughput, 0);
  EXPECT_GT(e.kv_capacity, 0);
  EXPECT_EQ(e.instances, static_cast<int>(plan.instances.size()));
  int devices = 0;
  for (const auto& inst : plan.instances) {
    devices += static_cast<int>(inst.primary_devices().size() + inst.attention_workers.size());
  }
  EXPECT_EQ(e.device_count, devices);
  EXPECT_DOUBLE_EQ(e.decode_weight, default_profile().decode_weight);
}

TEST(PlanEvaluator, BorrowingAndOwningAgree) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::llama_13b();
  engine::ExecModel exec(cluster, model);
  parallel::PlanEvaluator borrowing(exec);
  parallel::PlanEvaluator owning(cluster, model);
  parallel::Parallelizer par(cluster, model);
  parallel::ParallelPlan plan = par.plan(default_profile());
  const auto& inst = plan.instances.front();
  parallel::PlanEstimate a = borrowing.evaluate(inst, default_profile());
  parallel::PlanEstimate b = owning.evaluate(inst, default_profile());
  EXPECT_DOUBLE_EQ(a.ttft, b.ttft);
  EXPECT_DOUBLE_EQ(a.tpot, b.tpot);
  EXPECT_EQ(a.kv_capacity, b.kv_capacity);
}

TEST(PlanEvaluator, ReplicateScalesAggregates) {
  parallel::PlanEstimate e;
  e.ttft = 0.5;
  e.tpot = 0.02;
  e.throughput = 3;
  e.kv_capacity = 100;
  e.device_count = 4;
  parallel::PlanEstimate r = parallel::replicate_estimate(e, 3);
  EXPECT_DOUBLE_EQ(r.ttft, 0.5);   // latencies carry over
  EXPECT_DOUBLE_EQ(r.tpot, 0.02);
  EXPECT_DOUBLE_EQ(r.throughput, 9);
  EXPECT_EQ(r.kv_capacity, 300);
  EXPECT_EQ(r.device_count, 12);
  EXPECT_EQ(r.instances, 3);
}

// --- Search under objectives ------------------------------------------------

TEST(ObjectiveSearch, DefaultEqualsExplicitThroughput) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  parallel::Parallelizer par_default(cluster, model::llama_13b());
  parallel::ParallelizerOptions opts;
  opts.objective.name = "throughput";
  parallel::Parallelizer par_explicit(cluster, model::llama_13b(), opts);
  EXPECT_TRUE(plans_equal(par_default.plan(default_profile()),
                          par_explicit.plan(default_profile())));
  EXPECT_EQ(par_default.diagnostics().objective, "throughput");
}

// The ROADMAP-flagged regression (fig8-style mixed cluster, Llama-13B):
// the throughput search keeps the full 12-device deployment, which beats
// the 4xA100 plan on throughput but LOSES on TTFT.  Under the latency
// objective the planner must instead keep only the A100s as primaries --
// and its estimated TTFT must be no worse than the throughput plan's.
TEST(ObjectiveSearch, LatencyPrefersA100PrimariesOnFig8Cluster) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::llama_13b();
  parallel::WorkloadProfile profile = default_profile();

  parallel::Parallelizer throughput_par(cluster, model);
  parallel::ParallelPlan throughput_plan = throughput_par.plan(profile);

  parallel::ParallelizerOptions lat_opts;
  lat_opts.objective.name = "latency";
  parallel::Parallelizer latency_par(cluster, model, lat_opts);
  parallel::ParallelPlan latency_plan = latency_par.plan(profile);

  // Throughput keeps non-A100 primaries (the 12-device pipeline)...
  std::set<hw::GpuType> throughput_primary_types;
  for (const auto& inst : throughput_plan.instances) {
    for (int dev : inst.primary_devices()) {
      throughput_primary_types.insert(cluster.device(dev).type);
    }
  }
  EXPECT_GT(throughput_primary_types.size(), 1u);

  // ...while the latency objective serves primaries on A100s only.
  for (const auto& inst : latency_plan.instances) {
    for (int dev : inst.primary_devices()) {
      EXPECT_EQ(cluster.device(dev).type, hw::GpuType::kA100_80G);
    }
  }

  parallel::PlanEvaluator evaluator(cluster, model);
  const double latency_ttft = evaluator.evaluate(latency_plan, profile).ttft;
  const double throughput_ttft = evaluator.evaluate(throughput_plan, profile).ttft;
  EXPECT_LE(latency_ttft, throughput_ttft);
  EXPECT_EQ(latency_par.diagnostics().objective, "latency");
}

TEST(ObjectiveSearch, DepthExplorationNeverPicksParamInfeasiblePlans) {
  // Llama-70B (140 GB FP16) cannot live on one A100; the depth-explored
  // candidate space contains exactly such configs (all layers on the last
  // surviving primary) and their latency arithmetic can look excellent.
  // Every plan a depth-exploring objective returns must still host its
  // parameter shards with KV room to spare on every stage device.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::llama_70b();
  parallel::PlanEvaluator evaluator(cluster, model);
  for (const char* name : {"latency", "goodput_per_device"}) {
    parallel::ParallelizerOptions opts;
    opts.objective.name = name;
    parallel::Parallelizer par(cluster, model, opts);
    parallel::ParallelPlan plan = par.plan(default_profile());
    for (const auto& inst : plan.instances) {
      EXPECT_TRUE(evaluator.hosts_model(inst)) << name;
    }
    EXPECT_GT(evaluator.evaluate(plan, default_profile()).kv_capacity, 0) << name;
  }
}

TEST(ObjectiveSearch, GoodputPerDeviceShedsDevices) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::llama_13b();
  parallel::WorkloadProfile profile = default_profile();

  parallel::Parallelizer thr(cluster, model);
  parallel::ParallelizerOptions opts;
  opts.objective.name = "goodput_per_device";
  parallel::Parallelizer gpd(cluster, model, opts);

  parallel::PlanEvaluator evaluator(cluster, model);
  parallel::PlanEstimate thr_est = evaluator.evaluate(thr.plan(profile), profile);
  parallel::PlanEstimate gpd_est = evaluator.evaluate(gpd.plan(profile), profile);
  EXPECT_LT(gpd_est.device_count, thr_est.device_count);
  EXPECT_GT(gpd_est.throughput / gpd_est.device_count,
            thr_est.throughput / thr_est.device_count);
  EXPECT_LT(gpd.diagnostics().best_cost, 0) << "goodput scores are negated";
}

TEST(ObjectiveSearch, CustomObjectivePluggable) {
  // A caller-supplied objective (not in the factory) drives the same
  // search: maximize KV capacity, i.e. the plan must keep every device.
  class MaxKv final : public parallel::PlanObjective {
   public:
    std::string name() const override { return "max_kv"; }
    double score(const parallel::PlanEstimate& e) const override {
      return -static_cast<double>(e.kv_capacity);
    }
  };
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  parallel::Parallelizer par(cluster, model::llama_13b());
  MaxKv objective;
  parallel::ParallelPlan plan = par.plan(default_profile(), objective);
  int devices = 0;
  for (const auto& inst : plan.instances) {
    devices += static_cast<int>(inst.primary_devices().size() + inst.attention_workers.size());
  }
  EXPECT_EQ(devices, cluster.num_devices());
  EXPECT_EQ(par.diagnostics().objective, "max_kv");
}

TEST(ObjectiveSearch, ToStringSurfacesDiagnostics) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  parallel::ParallelizerOptions opts;
  opts.objective.name = "latency";
  parallel::Parallelizer par(cluster, model::llama_13b(), opts);
  parallel::ParallelPlan plan = par.plan(default_profile());
  const std::string s = plan.to_string(cluster, &par.diagnostics());
  EXPECT_NE(s.find("objective=latency"), std::string::npos);
  EXPECT_NE(s.find("evaluated="), std::string::npos);
  EXPECT_NE(s.find("best_score="), std::string::npos);
  EXPECT_NE(s.find("wall="), std::string::npos);
  // Without diagnostics the string stays the legacy layout-only form.
  EXPECT_EQ(plan.to_string(cluster).find("search{"), std::string::npos);
}

// --- Engine + control-plane wiring -----------------------------------------

TEST(ObjectiveWiring, EngineDeploysOnObjectiveChosenPlan) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::llama_13b();
  engine::HetisConfig cfg;
  cfg.workload = default_profile();
  cfg.search.objective.name = "latency";
  auto eng = engine::make("hetis", cluster, model, cfg);
  auto* hetis = dynamic_cast<core::HetisEngine*>(eng.get());
  ASSERT_NE(hetis, nullptr);
  EXPECT_EQ(hetis->plan_objective().name, "latency");
  EXPECT_EQ(hetis->search_diagnostics().objective, "latency");
  for (const auto& inst : hetis->plan().instances) {
    for (int dev : inst.primary_devices()) {
      EXPECT_EQ(cluster.device(dev).type, hw::GpuType::kA100_80G);
    }
  }
}

TEST(ObjectiveWiring, SetPlanObjectiveValidatesEagerly) {
  hw::Cluster cluster = hw::Cluster::ablation_cluster();
  core::HetisEngine eng(cluster, model::llama_13b());
  EXPECT_THROW(eng.set_plan_objective({"oracle", {}}), std::out_of_range);
  eng.set_plan_objective({"latency", {}});
  EXPECT_EQ(eng.plan_objective().name, "latency");
}

TEST(ObjectiveWiring, ReconfigureReplansUnderNewObjective) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::llama_13b();
  core::HetisEngine eng(cluster, model, core::HetisOptions{});
  sim::Simulation sim;
  eng.start(sim);
  eng.set_plan_objective({"latency", {}});
  std::vector<int> all(static_cast<std::size_t>(cluster.num_devices()));
  for (int i = 0; i < cluster.num_devices(); ++i) all[static_cast<std::size_t>(i)] = i;
  eng.reconfigure(sim, all);
  EXPECT_EQ(eng.search_diagnostics().objective, "latency");
  for (const auto& inst : eng.plan().instances) {
    for (int dev : inst.primary_devices()) {
      EXPECT_EQ(cluster.device(dev).type, hw::GpuType::kA100_80G);
    }
  }
}

TEST(ObjectiveWiring, SloPolicyControllerReplansForLatency) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  const model::ModelSpec& model = model::llama_13b();
  core::HetisEngine eng(cluster, model);

  control::ControlSpec cs;
  cs.policy = "slo";
  cs.horizon = 2.0;
  control::Controller ctl(cs, cluster);
  sim::Simulation sim;
  ctl.attach(sim, eng);
  EXPECT_EQ(ctl.replan_objective(), "latency");
  EXPECT_EQ(eng.plan_objective().name, "latency");

  // A pinned replan objective wins over the policy default.
  control::ControlSpec pinned = cs;
  pinned.replan_objective = "goodput_per_device";
  core::HetisEngine eng2(cluster, model);
  control::Controller ctl2(pinned, cluster);
  sim::Simulation sim2;
  ctl2.attach(sim2, eng2);
  EXPECT_EQ(eng2.plan_objective().name, "goodput_per_device");

  // Unknown names fail at spec time, before any run.
  control::ControlSpec bad = cs;
  bad.replan_objective = "oracle";
  EXPECT_THROW(control::Controller(bad, cluster), std::out_of_range);
}

TEST(ObjectiveWiring, ControllerTracksDeviceSeconds) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  control::ControlSpec cs;
  cs.policy = "static";
  cs.initial_devices = 4;
  cs.min_devices = 2;
  cs.tick = 0;  // no periodic ticks; only the attach-time shrink
  control::Controller ctl(cs, cluster);
  core::HetisEngine eng(cluster, model::llama_13b());
  sim::Simulation sim;
  ctl.attach(sim, eng);
  // Shrunk to 4 devices at t=0: 4 dev * 10 s.
  EXPECT_DOUBLE_EQ(ctl.device_seconds(10.0), 40.0);
  EXPECT_DOUBLE_EQ(ctl.device_seconds(0.0), 0.0);
}

// --- Harness sweep over objectives ------------------------------------------

harness::ExperimentSpec objective_spec() {
  harness::ExperimentSpec spec;
  spec.name = "objective_sweep";
  spec.engines = {"hetis"};
  spec.models = {"Llama-13B"};
  spec.cluster = "ablation";
  spec.horizon = 4.0;
  spec.run = engine::RunOptions(120.0);
  engine::SloSpec slo;
  slo.ttft = 2.0;
  slo.tpot = 0.2;
  spec.run.slo = slo;
  spec.workloads.push_back(harness::WorkloadPoint(workload::Dataset::kShareGPT, 1.5));
  return spec;
}

TEST(ObjectiveSweep, RowsCarryObjectiveAndCostColumns) {
  harness::ExperimentSpec spec = objective_spec();
  spec.objectives = {"throughput", "latency", "goodput_per_device"};
  const auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].objective, "throughput");
  EXPECT_EQ(rows[1].objective, "latency");
  EXPECT_EQ(rows[2].objective, "goodput_per_device");
  for (const auto& row : rows) {
    EXPECT_GT(row.device_seconds, 0) << row.objective;
    if (row.report.slo_attainment > 0) {
      EXPECT_GT(row.device_seconds_per_slo_request, 0) << row.objective;
    }
  }
  // The lean goodput plan occupies fewer device-seconds than the full
  // deployment serving the identical trace.
  EXPECT_LT(rows[2].device_seconds, rows[0].device_seconds);
}

TEST(ObjectiveSweep, DefaultObjectiveKeepsHistoricalCells) {
  harness::ExperimentSpec spec = objective_spec();
  const auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].objective, "default");
  EXPECT_GT(rows[0].device_seconds, 0);
}

TEST(ObjectiveSweep, ParallelRowsByteIdentical) {
  harness::ExperimentSpec spec = objective_spec();
  spec.objectives = {"throughput", "latency"};
  std::ostringstream serial, parallel_csv;
  harness::write_csv(serial, harness::run_sweep(spec));
  spec.jobs = 4;
  harness::write_csv(parallel_csv, harness::run_sweep(spec));
  EXPECT_EQ(serial.str(), parallel_csv.str());
}

TEST(ObjectiveSweep, CsvRoundTripsAllColumns) {
  harness::ExperimentSpec spec = objective_spec();
  spec.objectives = {"latency"};
  const auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 1u);
  const std::string serialized = harness::to_csv_row(rows[0]);
  const harness::SweepRow back = harness::sweep_row_from_csv(serialized);
  EXPECT_EQ(harness::to_csv_row(back), serialized);
  EXPECT_EQ(back.objective, "latency");
  EXPECT_DOUBLE_EQ(back.device_seconds, rows[0].device_seconds);
  EXPECT_DOUBLE_EQ(back.device_seconds_per_slo_request,
                   rows[0].device_seconds_per_slo_request);
  EXPECT_THROW(harness::sweep_row_from_csv("too,few,cells"), std::invalid_argument);

  // The header advertises exactly the columns a row serializes.
  const std::string header = harness::sweep_csv_header();
  EXPECT_NE(header.find(",objective,device_seconds,device_seconds_per_slo_request"),
            std::string::npos);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(serialized.begin(), serialized.end(), ','));
}

}  // namespace
}  // namespace hetis
