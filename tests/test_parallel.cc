// Unit tests: the Parallelizer (§4.1 hierarchical search).
#include <gtest/gtest.h>

#include <set>

#include "model/llm.h"
#include "parallel/parallelizer.h"

namespace hetis::parallel {
namespace {

WorkloadProfile default_profile() {
  WorkloadProfile p;
  p.prefill_tokens = 4096;
  p.decode_batch = 64;
  p.mean_context = 512;
  p.decode_weight = 256;
  return p;
}

void check_plan_wellformed(const ParallelPlan& plan, const hw::Cluster& cluster, int layers) {
  ASSERT_FALSE(plan.instances.empty());
  std::set<int> seen;
  for (const auto& inst : plan.instances) {
    EXPECT_EQ(inst.total_layers(), layers);
    for (const auto& s : inst.stages) {
      EXPECT_FALSE(s.devices.empty());
      EXPECT_GT(s.layers, 0);
      for (int dev : s.devices) {
        EXPECT_TRUE(seen.insert(dev).second) << "device " << dev << " used twice";
        EXPECT_LT(dev, cluster.num_devices());
      }
      // TP groups are homogeneous.
      for (int dev : s.devices) {
        EXPECT_EQ(cluster.device(dev).type, cluster.device(s.devices.front()).type);
      }
    }
    for (int dev : inst.attention_workers) {
      EXPECT_TRUE(seen.insert(dev).second) << "worker " << dev << " used twice";
    }
  }
}

TEST(Parallelizer, PaperClusterLlama70bRoles) {
  // The paper's §7.2 deployment: A100 + 3090 primaries, P100s dedicated to
  // Attention-worker roles.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  Parallelizer par(cluster, model::llama_70b());
  ParallelPlan plan = par.plan(default_profile());
  check_plan_wellformed(plan, cluster, 80);
  int p100_workers = 0, p100_primary = 0;
  for (const auto& inst : plan.instances) {
    for (int dev : inst.attention_workers) {
      if (cluster.device(dev).type == hw::GpuType::kP100) ++p100_workers;
    }
    for (const auto& s : inst.stages) {
      for (int dev : s.devices) {
        if (cluster.device(dev).type == hw::GpuType::kP100) ++p100_primary;
      }
    }
  }
  EXPECT_EQ(p100_workers, 4);
  EXPECT_EQ(p100_primary, 0);
}

TEST(Parallelizer, A100sAlwaysPrimary) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  for (const auto* m : {&model::llama_13b(), &model::opt_30b(), &model::llama_70b()}) {
    Parallelizer par(cluster, *m);
    ParallelPlan plan = par.plan(default_profile());
    for (const auto& inst : plan.instances) {
      for (int dev : inst.attention_workers) {
        EXPECT_NE(cluster.device(dev).type, hw::GpuType::kA100_80G) << m->name;
      }
    }
  }
}

class PlanAllModels : public ::testing::TestWithParam<const model::ModelSpec*> {};

TEST_P(PlanAllModels, WellFormedPlans) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  Parallelizer par(cluster, *GetParam());
  ParallelPlan plan = par.plan(default_profile());
  check_plan_wellformed(plan, cluster, GetParam()->layers);
}

INSTANTIATE_TEST_SUITE_P(Models, PlanAllModels,
                         ::testing::Values(&model::llama_13b(), &model::opt_30b(),
                                           &model::llama_70b(), &model::llama2_7b()),
                         [](const auto& info) {
                           std::string n = info.param->name;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

TEST(Parallelizer, PruningDisabledKeepsAllDevices) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  ParallelizerOptions opts;
  opts.enable_pruning = false;
  Parallelizer par(cluster, model::llama_70b(), opts);
  ParallelPlan plan = par.plan(default_profile());
  for (const auto& inst : plan.instances) {
    EXPECT_TRUE(inst.attention_workers.empty());
  }
  EXPECT_EQ(par.diagnostics().pruned_devices, 0);
}

TEST(Parallelizer, DeltaZeroPrunesNothing) {
  // With Delta = 0 any removal that increases C_p at all is rejected.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  ParallelizerOptions opts;
  opts.delta = 0.0;
  Parallelizer par(cluster, model::llama_70b(), opts);
  ParallelPlan plan = par.plan(default_profile());
  EXPECT_EQ(par.diagnostics().pruned_devices, 0);
}

TEST(Parallelizer, LargeDeltaPrunesAggressively) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  ParallelizerOptions small, large;
  small.delta = 0.02;
  large.delta = 0.5;
  Parallelizer par_small(cluster, model::llama_70b(), small);
  Parallelizer par_large(cluster, model::llama_70b(), large);
  par_small.plan(default_profile());
  par_large.plan(default_profile());
  EXPECT_GE(par_large.diagnostics().pruned_devices,
            par_small.diagnostics().pruned_devices);
}

TEST(Parallelizer, PerfectScalingCostMonotoneInDevices) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  Parallelizer par(cluster, model::llama_70b());
  WorkloadProfile prof = default_profile();
  double c4 = par.perfect_scaling_cost({{hw::GpuType::kA100_80G, 4}}, prof);
  double c2 = par.perfect_scaling_cost({{hw::GpuType::kA100_80G, 2}}, prof);
  EXPECT_LT(c4, c2);
  double with_3090 = par.perfect_scaling_cost(
      {{hw::GpuType::kA100_80G, 4}, {hw::GpuType::kRTX3090, 4}}, prof);
  EXPECT_LT(with_3090, c4);
}

TEST(Parallelizer, DiagnosticsPopulated) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  Parallelizer par(cluster, model::llama_13b());
  par.plan(default_profile());
  const SearchDiagnostics& d = par.diagnostics();
  EXPECT_GT(d.configurations_evaluated, 0);
  EXPECT_GE(d.instances_considered, 1);
  EXPECT_GT(d.best_cost, 0);
  EXPECT_GT(d.wall_time, 0);
}

TEST(Parallelizer, SearchIsFast) {
  // §7.4: the paper's search takes seconds; ours should be well under one.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  Parallelizer par(cluster, model::llama_70b());
  par.plan(default_profile());
  EXPECT_LT(par.diagnostics().wall_time, 5.0);
}

TEST(Parallelizer, SyntheticLargeClusterCompletes) {
  // §7.4's scale test shape: 5 GPU types x 32 devices.
  hw::Cluster cluster = hw::Cluster::synthetic_cluster(
      {hw::GpuType::kH100_80G, hw::GpuType::kA100_80G, hw::GpuType::kV100_32G,
       hw::GpuType::kL4, hw::GpuType::kT4},
      8);  // 8 per type keeps the test quick; the bench uses 32
  Parallelizer par(cluster, model::llama_70b());
  ParallelPlan plan = par.plan(default_profile());
  check_plan_wellformed(plan, cluster, 80);
}

TEST(Parallelizer, InfeasibleKvFloorThrows) {
  hw::Cluster cluster = hw::Cluster::ablation_cluster();
  Parallelizer par(cluster, model::llama_13b());
  WorkloadProfile prof = default_profile();
  prof.min_kv_bytes = 100ll * 1024 * GiB;  // impossible
  EXPECT_THROW(par.plan(prof), std::runtime_error);
}

TEST(Parallelizer, DpDisabledSingleInstance) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  ParallelizerOptions opts;
  opts.allow_dp = false;
  Parallelizer par(cluster, model::llama_13b(), opts);
  ParallelPlan plan = par.plan(default_profile());
  EXPECT_EQ(plan.instances.size(), 1u);
}

TEST(Parallelizer, PruningAblationEquivalence) {
  // enable_pruning=false and Delta=0 must land on the SAME plan: Delta=0
  // rejects every removal, so both searches see the identical (unpruned)
  // candidate set.  Guards the ablation switch against drifting from a
  // "no device ever pruned" search.
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  ParallelizerOptions no_pruning;
  no_pruning.enable_pruning = false;
  ParallelizerOptions delta_zero;
  delta_zero.delta = 0.0;
  for (const auto* m : {&model::llama_13b(), &model::llama_70b()}) {
    Parallelizer a(cluster, *m, no_pruning);
    Parallelizer b(cluster, *m, delta_zero);
    ParallelPlan pa = a.plan(default_profile());
    ParallelPlan pb = b.plan(default_profile());
    ASSERT_EQ(pa.instances.size(), pb.instances.size()) << m->name;
    for (std::size_t i = 0; i < pa.instances.size(); ++i) {
      EXPECT_EQ(pa.instances[i].attention_workers, pb.instances[i].attention_workers);
      ASSERT_EQ(pa.instances[i].stages.size(), pb.instances[i].stages.size()) << m->name;
      for (std::size_t k = 0; k < pa.instances[i].stages.size(); ++k) {
        EXPECT_EQ(pa.instances[i].stages[k].devices, pb.instances[i].stages[k].devices);
        EXPECT_EQ(pa.instances[i].stages[k].layers, pb.instances[i].stages[k].layers);
      }
    }
    EXPECT_EQ(a.diagnostics().pruned_devices, 0) << m->name;
    EXPECT_EQ(b.diagnostics().pruned_devices, 0) << m->name;
  }
}

TEST(RemapDeviceIds, RemapsThroughMapping) {
  StageConfig stage;
  stage.devices = {0, 2};
  remap_device_ids(stage, {7, 5, 3});
  EXPECT_EQ(stage.devices, (std::vector<int>{7, 3}));

  InstanceConfig cfg;
  cfg.stages.push_back(StageConfig{{1}, 4, 0});
  cfg.attention_workers = {0};
  remap_device_ids(cfg, {9, 8});
  EXPECT_EQ(cfg.stages[0].devices, (std::vector<int>{8}));
  EXPECT_EQ(cfg.attention_workers, (std::vector<int>{9}));
}

TEST(RemapDeviceIds, OutOfRangeThrowsWithContext) {
  StageConfig stage;
  stage.devices = {3};
  try {
    remap_device_ids(stage, {10, 11});  // id 3 outside [0, 2)
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("remap_device_ids"), std::string::npos);
    EXPECT_NE(msg.find("3"), std::string::npos) << "offending id spelled out";
    EXPECT_NE(msg.find("[0, 2)"), std::string::npos) << "mapping range spelled out";
  }

  // Negative ids (a corrupted plan) are rejected the same way, not used to
  // index the mapping.
  InstanceConfig cfg;
  cfg.attention_workers = {-1};
  EXPECT_THROW(remap_device_ids(cfg, {0, 1}), std::out_of_range);

  // A whole-plan remap through an empty mapping names the empty range.
  ParallelPlan plan;
  plan.instances.push_back(cfg);
  EXPECT_THROW(remap_device_ids(plan, {}), std::out_of_range);
}

TEST(RemapDeviceIds, FailedRemapLeavesEarlierStagesRewritten) {
  // Documented sharp edge: remapping is in-place, so a throw mid-plan can
  // leave a partially rewritten config.  Callers treat the plan as dead on
  // failure (the control plane replans from scratch); this test pins the
  // exception, not torn-state recovery.
  InstanceConfig cfg;
  cfg.stages.push_back(StageConfig{{0}, 4, 0});
  cfg.stages.push_back(StageConfig{{5}, 4, 0});
  EXPECT_THROW(remap_device_ids(cfg, {2}), std::out_of_range);
  EXPECT_EQ(cfg.stages[0].devices.front(), 2) << "first stage already rewritten";
}

TEST(Parallelizer, PlanToStringReadable) {
  hw::Cluster cluster = hw::Cluster::paper_cluster();
  Parallelizer par(cluster, model::llama_70b());
  ParallelPlan plan = par.plan(default_profile());
  std::string s = plan.to_string(cluster);
  EXPECT_NE(s.find("A100"), std::string::npos);
  EXPECT_NE(s.find("attn["), std::string::npos);
}

}  // namespace
}  // namespace hetis::parallel
