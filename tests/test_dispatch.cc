// Unit + property tests: the head-wise Dispatcher (§5).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dispatch/dispatcher.h"

namespace hetis::dispatch {
namespace {

// A two-stage primary (fast A100-like + slower 3090-like) with two slow
// attention workers, MHA model with 32 heads.
DispatcherConfig basic_config(int heads = 32, int group = 1) {
  DispatcherConfig cfg;
  cfg.heads = heads;
  cfg.group_size = group;
  cfg.bytes_per_head_token_layer = 512.0 / group;  // 2*d*dtype/r with d=128
  cfg.total_layers = 40;
  cfg.theta = 0.5;

  StageDesc s0;
  s0.devices = {0, 1};
  s0.layers = 28;
  s0.attn = costmodel::AttnParams{2e-8, 1.0 / 1.1e12, 3e-6};
  s0.capacity = 40ll * GiB;
  StageDesc s1;
  s1.devices = {2, 3};
  s1.layers = 12;
  s1.attn = costmodel::AttnParams{4.5e-8, 1.0 / 0.6e12, 4e-6};
  s1.capacity = 20ll * GiB;
  cfg.stages = {s0, s1};

  for (int w = 0; w < 2; ++w) {
    WorkerDesc wd;
    wd.device = 8 + w;
    wd.attn = costmodel::AttnParams{1.1e-7, 1.0 / 0.34e12, 8e-6};
    wd.transfer = costmodel::TransferParams{1.0 / 12.5e9, 4e-5};
    wd.capacity = 10ll * GiB;
    cfg.workers.push_back(wd);
  }
  return cfg;
}

TEST(Dispatcher, ConstructionValidation) {
  DispatcherConfig cfg = basic_config();
  cfg.stages.clear();
  EXPECT_THROW(Dispatcher{cfg}, std::invalid_argument);
  cfg = basic_config();
  cfg.heads = 33;
  cfg.group_size = 8;
  EXPECT_THROW(Dispatcher{cfg}, std::invalid_argument);
  cfg = basic_config();
  cfg.bytes_per_head_token_layer = 0;
  EXPECT_THROW(Dispatcher{cfg}, std::invalid_argument);
}

TEST(Dispatcher, DispatchMeetsHeadIntegrity) {
  Dispatcher d(basic_config());
  auto placed = d.dispatch({{1, 500}, {2, 1200}}, 0.0);
  ASSERT_TRUE(placed.has_value());
  for (const auto& pc : *placed) {
    EXPECT_EQ(pc.total(), 32);
    EXPECT_GE(pc.local, 0);
    for (int h : pc.worker_heads) EXPECT_GE(h, 0);
  }
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.contains(1));
  EXPECT_EQ(d.context(2), 1200);
}

TEST(Dispatcher, LightLoadStaysLocal) {
  // A single short request must not be offloaded: the transfer constants
  // exceed any conceivable balance gain (the Fig. 14 "3090s start later"
  // behaviour).
  Dispatcher d(basic_config());
  auto placed = d.dispatch({{1, 300}}, 0.0);
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ((*placed)[0].local, 32);
}

TEST(Dispatcher, HeavyLoadSpillsToWorkers) {
  Dispatcher d(basic_config());
  // Load that exceeds the primary's cache budget but fits the cluster:
  // memory alone forces offloading onto the workers.
  std::vector<std::pair<workload::RequestId, std::int64_t>> reqs;
  for (int i = 0; i < 100; ++i) reqs.emplace_back(i, 1200);
  auto placed = d.dispatch(reqs, 0.0);
  ASSERT_TRUE(placed.has_value());
  int offloaded = 0;
  for (const auto& pc : *placed) {
    for (int h : pc.worker_heads) offloaded += h;
  }
  EXPECT_GT(offloaded, 0);
}

TEST(Dispatcher, GqaGroupGranularity) {
  DispatcherConfig cfg = basic_config(64, 8);  // Llama-70B-like
  Dispatcher d(cfg);
  std::vector<std::pair<workload::RequestId, std::int64_t>> reqs;
  for (int i = 0; i < 100; ++i) reqs.emplace_back(i, 4000);
  auto placed = d.dispatch(reqs, 0.0);
  ASSERT_TRUE(placed.has_value());
  for (const auto& pc : *placed) {
    EXPECT_EQ(pc.local % 8, 0);
    for (int h : pc.worker_heads) EXPECT_EQ(h % 8, 0);
    EXPECT_EQ(pc.total(), 64);
  }
}

TEST(Dispatcher, InfeasibleWhenOutOfMemory) {
  DispatcherConfig cfg = basic_config();
  for (auto& s : cfg.stages) s.capacity = 1 * MiB;
  for (auto& w : cfg.workers) w.capacity = 1 * MiB;
  Dispatcher d(cfg);
  auto placed = d.dispatch({{1, 100000}}, 0.0);
  EXPECT_FALSE(placed.has_value());
  EXPECT_EQ(d.size(), 0u);  // nothing registered on failure
}

TEST(Dispatcher, AppendAndRemoveLifecycle) {
  Dispatcher d(basic_config());
  ASSERT_TRUE(d.dispatch({{1, 100}}, 0.0).has_value());
  d.append_token(1);
  EXPECT_EQ(d.context(1), 101);
  d.remove(1);
  EXPECT_FALSE(d.contains(1));
  EXPECT_THROW(d.append_token(1), std::out_of_range);
  EXPECT_THROW(d.placement(1), std::out_of_range);
}

TEST(Dispatcher, AttentionTimeGrowsWithLoad) {
  Dispatcher d(basic_config());
  ASSERT_TRUE(d.dispatch({{1, 500}}, 0.0).has_value());
  Seconds t1 = d.attention_iteration_time();
  ASSERT_TRUE(d.dispatch({{2, 500}, {3, 500}, {4, 500}}, 0.0).has_value());
  Seconds t4 = d.attention_iteration_time();
  EXPECT_GT(t4, t1);
}

TEST(Dispatcher, EmptyStateIsFree) {
  Dispatcher d(basic_config());
  EXPECT_DOUBLE_EQ(d.attention_iteration_time(), 0.0);
  EXPECT_DOUBLE_EQ(d.worst_per_layer(), 0.0);
  EXPECT_DOUBLE_EQ(d.ideal_per_layer(), 0.0);
  EXPECT_FALSE(d.should_rebalance());
  EXPECT_FALSE(d.first_overflowed().has_value());
  EXPECT_TRUE(d.has_global_spare());
}

TEST(Dispatcher, IdealNeverExceedsWorst) {
  Dispatcher d(basic_config());
  std::vector<std::pair<workload::RequestId, std::int64_t>> reqs;
  for (int i = 0; i < 50; ++i) reqs.emplace_back(i, 200 + 57 * i);
  ASSERT_TRUE(d.dispatch(reqs, 0.0).has_value());
  // Ideal (everything re-dispatchable, global memory) is computed by
  // waterfilling; must not exceed the current bottleneck meaningfully.
  EXPECT_LE(d.ideal_per_layer(), d.worst_per_layer() * 1.05 + 1e-9);
}

TEST(Dispatcher, RebalanceTriggerAfterSkew) {
  Dispatcher d(basic_config());
  // Dispatch a batch, then grow one request's context enormously to skew
  // the load (the §5.3.1 long-context scenario).
  ASSERT_TRUE(d.dispatch({{1, 100}, {2, 100}}, 0.0).has_value());
  for (int i = 0; i < 30000; ++i) d.append_token(1);
  if (d.should_rebalance()) {
    Rebalance rb = d.plan_rebalance();
    if (rb.valid) {
      Seconds before = d.worst_per_layer();
      d.apply(rb);
      EXPECT_LE(d.worst_per_layer(), before + 1e-12);
      EXPECT_GT(rb.moved_heads, 0);
      EXPECT_GT(rb.moved_bytes, 0);
    }
  }
  // At minimum the machinery must run without error.
  SUCCEED();
}

TEST(Dispatcher, RescuePlanMovesVictimOffDevice) {
  DispatcherConfig cfg = basic_config();
  // Tight stage memory so appends overflow the primary.
  cfg.stages[0].capacity = 600ll * MiB;
  cfg.stages[1].capacity = 250ll * MiB;
  Dispatcher d(cfg);
  ASSERT_TRUE(d.dispatch({{1, 2000}, {2, 2000}}, 0.0).has_value());
  // Grow until something overflows.
  int guard = 0;
  while (!d.first_overflowed() && guard++ < 200000) {
    d.append_token(1);
    d.append_token(2);
  }
  ASSERT_TRUE(d.first_overflowed().has_value());
  workload::RequestId victim = d.evict_candidate_on(*d.first_overflowed());
  ASSERT_GE(victim, 0);
  Rebalance rb = d.plan_rescue(victim);
  if (rb.valid) {
    d.apply(rb);
    EXPECT_EQ(d.placement(victim).total(), cfg.heads);
  }
}

TEST(Dispatcher, EvictCandidateIsLifo) {
  Dispatcher d(basic_config());
  ASSERT_TRUE(d.dispatch({{1, 500}}, 10.0).has_value());
  ASSERT_TRUE(d.dispatch({{2, 500}}, 20.0).has_value());
  ASSERT_TRUE(d.dispatch({{3, 500}}, 15.0).has_value());
  // All requests have local heads; the primary's LIFO victim is the
  // latest arrival (id 2, t=20).
  EXPECT_EQ(d.evict_candidate_on(0), 2);
}

TEST(Dispatcher, EvictCandidateRestrictedToDevice) {
  // §5.3.2: only requests actually holding cache on the exhausted device
  // are candidates.
  Dispatcher d(basic_config());
  ASSERT_TRUE(d.dispatch({{1, 500}}, 10.0).has_value());
  // Worker 0 has no heads -> no candidate there.
  EXPECT_EQ(d.evict_candidate_on(1), -1);
}

TEST(Dispatcher, PhysicalIntrospection) {
  Dispatcher d(basic_config());
  ASSERT_TRUE(d.dispatch({{1, 1000}}, 0.0).has_value());
  // Stage 0 devices share the local heads evenly.
  EXPECT_DOUBLE_EQ(d.physical_heads(0), d.physical_heads(1));
  EXPECT_GT(d.physical_heads(0), 0);
  EXPECT_GE(d.physical_cache_fraction(0), 0);
  EXPECT_LE(d.physical_cache_fraction(0), 1.0);
  // Unknown device reads as empty.
  EXPECT_DOUBLE_EQ(d.physical_heads(99), 0.0);
}

TEST(Dispatcher, GreedyFallbackMatchesLpFeasibility) {
  DispatcherConfig lp_cfg = basic_config();
  DispatcherConfig greedy_cfg = basic_config();
  greedy_cfg.use_lp = false;
  Dispatcher lp(lp_cfg), greedy(greedy_cfg);
  std::vector<std::pair<workload::RequestId, std::int64_t>> reqs;
  for (int i = 0; i < 40; ++i) reqs.emplace_back(i, 800);
  auto a = lp.dispatch(reqs, 0.0);
  auto b = greedy.dispatch(reqs, 0.0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // The LP makespan should be no worse than greedy's (same model).
  EXPECT_LE(lp.worst_per_layer(), greedy.worst_per_layer() * 1.10 + 1e-9);
}

// Property sweep: memory accounting is exact under random workloads.
class DispatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(DispatchProperty, MemoryNeverOverflowsAtDispatchTime) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  DispatcherConfig cfg = basic_config();
  Dispatcher d(cfg);
  workload::RequestId next = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::pair<workload::RequestId, std::int64_t>> reqs;
    int n = 1 + static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < n; ++i) {
      reqs.emplace_back(next++, rng.uniform_int(50, 4000));
    }
    auto placed = d.dispatch(reqs, static_cast<double>(round));
    if (!placed) break;
    // Dispatch must never leave a device overflowed.
    EXPECT_FALSE(d.first_overflowed().has_value()) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace hetis::dispatch
