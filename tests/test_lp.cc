// Unit + property tests: simplex solver and the min-max dispatch LP.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "lp/minmax.h"
#include "lp/simplex.h"

namespace hetis::lp {
namespace {

// --- Simplex ---

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x - 2y.
  Problem p;
  p.num_vars = 2;
  p.objective = {-3, -2};
  p.add_le({1, 1}, 4);
  p.add_le({1, 0}, 2);
  Solution s = solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, -10.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + y = 5, x >= 0, y >= 0 -> objective 5.
  Problem p;
  p.num_vars = 2;
  p.objective = {1, 1};
  p.add_eq({1, 1}, 5);
  Solution s = solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 5.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x - y >= -2.
  Problem p;
  p.num_vars = 2;
  p.objective = {2, 3};
  p.add_ge({1, 1}, 4);
  p.add_ge({1, -1}, -2);
  Solution s = solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 8.0, 1e-9);  // x=4, y=0
}

TEST(Simplex, InfeasibleDetected) {
  Problem p;
  p.num_vars = 1;
  p.objective = {1};
  p.add_le({1}, 1);
  p.add_ge({1}, 2);
  Solution s = solve(p);
  EXPECT_EQ(s.status, Status::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Problem p;
  p.num_vars = 1;
  p.objective = {-1};  // max x with no upper bound
  p.add_ge({1}, 0);
  Solution s = solve(p);
  EXPECT_EQ(s.status, Status::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x <= -1 is infeasible for x >= 0; -x <= -1 means x >= 1.
  Problem p;
  p.num_vars = 1;
  p.objective = {1};
  p.add_le({-1}, -1);  // -x <= -1  <=>  x >= 1
  Solution s = solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Redundant constraints; Bland's rule must avoid cycling.
  Problem p;
  p.num_vars = 2;
  p.objective = {-1, -1};
  p.add_le({1, 1}, 1);
  p.add_le({1, 1}, 1);
  p.add_le({2, 2}, 2);
  p.add_le({1, 0}, 1);
  Solution s = solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(Simplex, ShapeValidation) {
  Problem p;
  p.num_vars = 2;
  p.objective = {1};  // wrong size
  EXPECT_THROW(solve(p), std::invalid_argument);
  p.objective = {1, 1};
  p.constraints.push_back(Constraint{{1.0}, Relation::kLe, 1.0});  // wrong size
  EXPECT_THROW(solve(p), std::invalid_argument);
}

TEST(Simplex, StatusStrings) {
  EXPECT_STREQ(to_string(Status::kOptimal), "optimal");
  EXPECT_STREQ(to_string(Status::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(Status::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(Status::kMalformed), "malformed");
}

// Non-finite inputs come back as a typed kMalformed status (never an
// assert or NaN-poisoned tableau): the flow planner legitimately produces
// infinite cost coefficients for impossible configurations and branches on
// the status.
TEST(Simplex, MalformedInputsReported) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  for (int where = 0; where < 3; ++where) {
    for (double bad : {nan, inf, -inf}) {
      Problem p;
      p.num_vars = 2;
      p.objective = {1, 1};
      p.add_le({1, 1}, 4);
      if (where == 0) p.objective[1] = bad;
      if (where == 1) p.constraints[0].coeffs[0] = bad;
      if (where == 2) p.constraints[0].rhs = bad;
      Solution s = solve(p);
      EXPECT_EQ(s.status, Status::kMalformed) << "where=" << where << " bad=" << bad;
      EXPECT_FALSE(s.ok());
      EXPECT_TRUE(s.x.empty());
    }
  }
}

TEST(Simplex, IterationsCountPivots) {
  Problem p;
  p.num_vars = 2;
  p.objective = {-3, -2};
  p.add_le({1, 1}, 4);
  p.add_le({1, 0}, 2);
  Solution s = solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s.iterations, 0u);  // reaching this optimum needs real pivots
  // Statuses short of optimal still report the work done getting there.
  Problem q;
  q.num_vars = 1;
  q.objective = {1};
  q.add_le({1}, 1);
  q.add_ge({1}, 2);
  EXPECT_EQ(solve(q).status, Status::kInfeasible);
}

TEST(Simplex, ZeroVariableShell) {
  // A degenerate n == 0 problem is vacuously optimal when every constraint
  // holds at x = {} and infeasible otherwise -- it must not index into an
  // empty tableau.
  Problem p;
  p.num_vars = 0;
  Solution s = solve(p);
  EXPECT_EQ(s.status, Status::kOptimal);
  EXPECT_EQ(s.objective, 0.0);
  p.constraints.push_back(Constraint{{}, Relation::kGe, 1.0});  // 0 >= 1
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

// Property: on random feasible bounded LPs the simplex solution must be
// feasible and no worse than a large sample of random feasible points.
class SimplexRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom, OptimalBeatsRandomFeasiblePoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3, m = 4;
  Problem p;
  p.num_vars = n;
  for (std::size_t j = 0; j < n; ++j) p.objective.push_back(rng.uniform(0.1, 2.0));
  // Constraints a.x <= b with positive a, b: box-like, always feasible
  // (x=0) and bounded in the minimization sense; add a >= to make the
  // optimum nontrivial.
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> row;
    for (std::size_t j = 0; j < n; ++j) row.push_back(rng.uniform(0.1, 1.0));
    double rhs = rng.uniform(1.0, 5.0);
    p.add_le(row, rhs);
    rows.push_back(row);
  }
  std::vector<double> ge_row;
  for (std::size_t j = 0; j < n; ++j) ge_row.push_back(rng.uniform(0.5, 1.0));
  p.add_ge(ge_row, 0.5);

  Solution s = solve(p);
  ASSERT_TRUE(s.ok());
  // Feasibility.
  for (std::size_t i = 0; i < m; ++i) {
    double lhs = 0;
    for (std::size_t j = 0; j < n; ++j) lhs += rows[i][j] * s.x[j];
    EXPECT_LE(lhs, p.constraints[i].rhs + 1e-6);
  }
  double ge_lhs = 0;
  for (std::size_t j = 0; j < n; ++j) ge_lhs += ge_row[j] * s.x[j];
  EXPECT_GE(ge_lhs, 0.5 - 1e-6);
  // Optimality against random feasible points.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(0.0, 3.0);
    bool feasible = true;
    for (std::size_t i = 0; i < m && feasible; ++i) {
      double lhs = 0;
      for (std::size_t j = 0; j < n; ++j) lhs += rows[i][j] * x[j];
      feasible = lhs <= p.constraints[i].rhs;
    }
    double g = 0;
    for (std::size_t j = 0; j < n; ++j) g += ge_row[j] * x[j];
    feasible = feasible && g >= 0.5;
    if (!feasible) continue;
    double obj = 0;
    for (std::size_t j = 0; j < n; ++j) obj += p.objective[j] * x[j];
    EXPECT_GE(obj, s.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom, ::testing::Range(1, 13));

// --- MinMax dispatch ---

MinMaxProblem two_device_problem() {
  MinMaxProblem p;
  p.base_time = {1e-3, 0.5e-3};   // device 1 currently less loaded
  p.head_cost = {1e-5, 2e-5};     // device 1 slower per head
  p.cache_cost = {1e-12, 2e-12};
  p.mem_free = {1e9, 1e9};
  p.demand = {32};
  p.cache_per_head = {1e5};
  p.group_size = 1;
  return p;
}

TEST(MinMax, RelaxedSolutionMeetsDemand) {
  MinMaxProblem p = two_device_problem();
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());
  double total = s.heads[0][0] + s.heads[1][0];
  EXPECT_NEAR(total, 32.0, 1e-6);
  EXPECT_GT(s.objective, 0.0);
}

TEST(MinMax, MalformedInputsReported) {
  // NaN/inf cost terms (a division by a zero bandwidth upstream, say) are
  // reported as kMalformed, not fed into the tableau -- and checked before
  // shape validation so a poisoned value never throws.
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity()}) {
    MinMaxProblem p = two_device_problem();
    p.head_cost[1] = bad;
    MinMaxSolution s = solve_relaxed(p);
    EXPECT_EQ(s.status, Status::kMalformed);
    EXPECT_FALSE(s.ok());
    EXPECT_TRUE(s.heads.empty());
  }
}

TEST(MinMax, RelaxedOptimumIsLowerBoundOfGreedy) {
  MinMaxProblem p = two_device_problem();
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());
  auto greedy = greedy_dispatch(p);
  EXPECT_LE(s.objective, eval_makespan(p, greedy) + 1e-9);
}

TEST(MinMax, RoundingPreservesDemandAndGranularity) {
  MinMaxProblem p = two_device_problem();
  p.group_size = 8;
  p.demand = {32};
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());
  auto rounded = round_to_groups(p, s);
  int total = rounded[0][0] + rounded[1][0];
  EXPECT_EQ(total, 32);
  EXPECT_EQ(rounded[0][0] % 8, 0);
  EXPECT_EQ(rounded[1][0] % 8, 0);
}

TEST(MinMax, MemoryConstraintRespected) {
  MinMaxProblem p = two_device_problem();
  // Device 0 can hold only 10 heads worth of cache.
  p.mem_free = {10 * 1e5, 1e9};
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());
  EXPECT_LE(s.heads[0][0] * 1e5, 10 * 1e5 + 1e-3);
  auto rounded = round_to_groups(p, s);
  EXPECT_LE(rounded[0][0] * 1e5, 10 * 1e5 + 1e-3);
}

TEST(MinMax, GreedyRespectsMemory) {
  MinMaxProblem p = two_device_problem();
  p.mem_free = {5 * 1e5, 1e9};
  auto heads = greedy_dispatch(p);
  EXPECT_LE(heads[0][0], 5);
  EXPECT_EQ(heads[0][0] + heads[1][0], 32);
}

TEST(MinMax, GreedyStopsWhenClusterFull) {
  MinMaxProblem p = two_device_problem();
  p.mem_free = {5 * 1e5, 5 * 1e5};  // room for 10 of the 32 heads
  auto heads = greedy_dispatch(p);
  EXPECT_LT(heads[0][0] + heads[1][0], 32);  // caller must detect shortfall
}

TEST(MinMax, LoadBalancesTowardFasterDevice) {
  MinMaxProblem p = two_device_problem();
  p.base_time = {0.0, 0.0};
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());
  // Device 0 is 2x faster per head: it should take about 2/3 of the heads.
  EXPECT_GT(s.heads[0][0], s.heads[1][0]);
}

TEST(MinMax, MultiRequestIntegrity) {
  MinMaxProblem p = two_device_problem();
  p.demand = {32, 32, 32};
  p.cache_per_head = {1e5, 2e5, 5e4};
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());
  auto rounded = round_to_groups(p, s);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(rounded[0][j] + rounded[1][j], 32) << "request " << j;
  }
}

TEST(MinMax, GlobalMemoryVariant) {
  MinMaxProblem p = two_device_problem();
  p.global_memory_only = true;
  p.mem_free = {0.0, 32 * 1e5};  // per-device would be infeasible on dev 0
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());  // the global sum has room
}

TEST(MinMax, ValidationErrors) {
  MinMaxProblem p = two_device_problem();
  p.demand = {33};  // not a multiple of group_size=8
  p.group_size = 8;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = two_device_problem();
  p.head_cost.pop_back();
  EXPECT_THROW(solve_relaxed(p), std::invalid_argument);
}

TEST(MinMax, EmptyRequestSetTrivial) {
  MinMaxProblem p = two_device_problem();
  p.demand.clear();
  p.cache_per_head.clear();
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 1e-3, 1e-9);  // max base time
}

// Property sweep: rounding never violates memory and always meets demand
// across random instances.
class MinMaxRandom : public ::testing::TestWithParam<int> {};

TEST_P(MinMaxRandom, RoundingInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  MinMaxProblem p;
  std::size_t d = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  std::size_t j = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  p.group_size = rng.bernoulli(0.5) ? 1 : 8;
  for (std::size_t i = 0; i < d; ++i) {
    p.base_time.push_back(rng.uniform(0, 2e-3));
    p.head_cost.push_back(rng.uniform(1e-6, 5e-5));
    p.cache_cost.push_back(rng.uniform(1e-13, 5e-12));
    p.mem_free.push_back(rng.uniform(1e8, 2e9));
  }
  const double demand = 8.0 * p.group_size;
  for (std::size_t r = 0; r < j; ++r) {
    p.demand.push_back(demand);
    p.cache_per_head.push_back(rng.uniform(1e4, 4e5));
  }
  MinMaxSolution s = solve_relaxed(p);
  ASSERT_TRUE(s.ok());
  auto rounded = round_to_groups(p, s);
  for (std::size_t r = 0; r < j; ++r) {
    int total = 0;
    for (std::size_t i = 0; i < d; ++i) {
      EXPECT_EQ(rounded[i][r] % p.group_size, 0);
      EXPECT_GE(rounded[i][r], 0);
      total += rounded[i][r];
    }
    EXPECT_EQ(total, static_cast<int>(demand));
  }
  for (std::size_t i = 0; i < d; ++i) {
    double used = 0;
    for (std::size_t r = 0; r < j; ++r) used += rounded[i][r] * p.cache_per_head[r];
    EXPECT_LE(used, p.mem_free[i] * 1.02 + 1e5);  // small rounding slack
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinMaxRandom, ::testing::Range(1, 21));

}  // namespace
}  // namespace hetis::lp
