// Engine registry: construction by name, unknown-name errors, and the
// tagged EngineOptions plumbing.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/registry.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/trace.h"

namespace hetis {
namespace {

std::vector<workload::Request> small_trace(double rate = 2.0, Seconds horizon = 5.0) {
  workload::TraceOptions opts;
  opts.dataset = workload::Dataset::kShareGPT;
  opts.rate = rate;
  opts.horizon = horizon;
  opts.seed = 99;
  return workload::build_trace(opts);
}

TEST(Registry, ListsAllBuiltinEngines) {
  auto names = engine::Registry::global().names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "hetis");
  EXPECT_EQ(names[1], "hexgen");
  EXPECT_EQ(names[2], "splitwise");
  for (const auto& n : names) EXPECT_TRUE(engine::Registry::global().contains(n));
}

TEST(Registry, ConstructsEveryEngineByName) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  const std::vector<std::pair<std::string, std::string>> expected{
      {"hetis", "Hetis"}, {"splitwise", "Splitwise"}, {"hexgen", "Hexgen"}};
  for (const auto& [key, display] : expected) {
    auto eng = engine::make(key, cluster, m);
    ASSERT_NE(eng, nullptr) << key;
    EXPECT_EQ(eng->name(), display);
    EXPECT_GT(eng->usable_kv_capacity(), 0) << key;
  }
}

TEST(Registry, NamesAreCaseInsensitive) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  auto eng = engine::make("Hexgen", cluster, m);
  EXPECT_EQ(eng->name(), "Hexgen");
}

TEST(Registry, UnknownNameThrowsWithKnownNames) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  try {
    engine::make("vllm", cluster, m);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("unknown engine 'vllm'"), std::string::npos) << msg;
    // The error must teach the caller the valid names.
    EXPECT_NE(msg.find("hetis"), std::string::npos) << msg;
    EXPECT_NE(msg.find("splitwise"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hexgen"), std::string::npos) << msg;
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  EXPECT_THROW(engine::Registry::global().add(
                   "hetis",
                   [](const hw::Cluster&, const model::ModelSpec&,
                      const engine::EngineOptions&) -> std::unique_ptr<engine::Engine> {
                     return nullptr;
                   }),
               std::logic_error);
}

TEST(Registry, MismatchedOptionsTagThrows) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  engine::EngineOptions hetis_opts{engine::HetisConfig{}};
  EXPECT_THROW(engine::make("splitwise", cluster, m, hetis_opts), std::invalid_argument);
  EXPECT_THROW(engine::make("hexgen", cluster, m, hetis_opts), std::invalid_argument);
  // Default-tagged options work everywhere.
  EXPECT_NO_THROW(engine::make("splitwise", cluster, m, engine::EngineOptions{}));
}

TEST(Registry, HetisOptionsCarryThroughTheFactory) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  engine::HetisConfig cfg;
  cfg.workload.decode_batch = 64;
  auto eng = engine::make("hetis", cluster, m, cfg);
  auto rep = engine::run_trace(*eng, small_trace(), engine::RunOptions(600.0));
  EXPECT_EQ(rep.engine, "Hetis");
  EXPECT_EQ(rep.finished, rep.arrived);
  EXPECT_FALSE(rep.drain_timeout_hit);
}

TEST(Registry, FixedPlanViaOptionsSkipsTheSearch) {
  // Pin the Fig. 14 ablation layout (A100 primary, two 3090 attention
  // workers) through EngineOptions and serve on it.
  hw::Cluster cluster = harness::cluster_by_name("ablation");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  parallel::ParallelPlan plan;
  parallel::InstanceConfig inst;
  parallel::StageConfig stage;
  stage.devices = {0};
  stage.layers = m.layers;
  inst.stages = {stage};
  inst.attention_workers = {1, 2};
  plan.instances.push_back(inst);

  engine::HetisConfig cfg;
  cfg.plan = plan;
  auto eng = engine::make("hetis", cluster, m, cfg);
  auto rep = engine::run_trace(*eng, small_trace(1.0, 5.0), engine::RunOptions(900.0));
  EXPECT_GT(rep.finished, 0u);
}

TEST(Registry, ClusterPresetUnknownNameThrows) {
  const auto names = harness::cluster_preset_names();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* dc : {"dc64", "dc128", "dc256"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), dc), names.end()) << dc;
  }
  // The unknown-name error names every preset, sorted, so the datacenter
  // additions surface in the message a typo provokes.
  try {
    harness::cluster_by_name("nonexistent");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'nonexistent'"), std::string::npos) << msg;
    for (const std::string& name : names) {
      EXPECT_NE(msg.find("'" + name + "'"), std::string::npos) << msg;
    }
  }
  // Every advertised preset must actually build.
  for (const std::string& name : names) {
    EXPECT_GT(harness::cluster_by_name(name).num_devices(), 0) << name;
  }
  EXPECT_EQ(harness::cluster_by_name("dc64").num_devices(), 64);
  EXPECT_EQ(harness::cluster_by_name("dc128").num_devices(), 128);
  EXPECT_EQ(harness::cluster_by_name("dc256").num_devices(), 256);
}

}  // namespace
}  // namespace hetis
