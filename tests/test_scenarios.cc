// Scenario workload generators: determinism, per-scenario shape, tenant
// attribution, and every generator served by every registered engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "engine/registry.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace hetis {
namespace {

using workload::Scenario;
using workload::ScenarioSpec;

ScenarioSpec small_spec(Scenario kind, double rate = 4.0, Seconds horizon = 20.0,
                        std::uint64_t seed = 7) {
  return workload::scenario_preset(kind, rate, horizon, seed);
}

std::vector<Scenario> all_kinds() {
  std::vector<Scenario> kinds;
  for (const auto& name : workload::scenario_names()) {
    kinds.push_back(workload::scenario_by_name(name));
  }
  return kinds;
}

TEST(ScenarioNames, RoundTripAndCount) {
  const auto names = workload::scenario_names();
  EXPECT_GE(names.size(), 5u);  // acceptance: at least 5 distinct generators
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& name : names) {
    EXPECT_EQ(workload::to_string(workload::scenario_by_name(name)), name);
  }
  EXPECT_EQ(workload::scenario_by_name("multi-tenant"), Scenario::kMultiTenant);
  EXPECT_EQ(workload::scenario_by_name("long-context"), Scenario::kLongContext);
  EXPECT_THROW(workload::scenario_by_name("flashcrowd"), std::out_of_range);
}

TEST(ScenarioGenerate, WellFormedSortedSequentialWithinHorizon) {
  for (Scenario kind : all_kinds()) {
    const auto trace = workload::generate_scenario(small_spec(kind));
    ASSERT_FALSE(trace.empty()) << workload::to_string(kind);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(trace[i].id, static_cast<workload::RequestId>(i));
      EXPECT_GE(trace[i].arrival, 0.0);
      EXPECT_LT(trace[i].arrival, 20.0) << workload::to_string(kind);
      EXPECT_GT(trace[i].prompt_len, 0);
      EXPECT_GT(trace[i].output_len, 0);
      if (i > 0) {
        EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
      }
    }
  }
}

TEST(ScenarioGenerate, DeterministicBySeedAndSeedSensitive) {
  for (Scenario kind : all_kinds()) {
    const auto a = workload::generate_scenario(small_spec(kind));
    const auto b = workload::generate_scenario(small_spec(kind));
    ASSERT_EQ(a.size(), b.size()) << workload::to_string(kind);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].arrival, b[i].arrival);
      EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
      EXPECT_EQ(a[i].output_len, b[i].output_len);
      EXPECT_EQ(a[i].tenant, b[i].tenant);
    }
    const auto c = workload::generate_scenario(small_spec(kind, 4.0, 20.0, /*seed=*/8));
    bool differ = a.size() != c.size();
    for (std::size_t i = 0; !differ && i < a.size(); ++i) {
      differ = a[i].arrival != c[i].arrival || a[i].prompt_len != c[i].prompt_len;
    }
    EXPECT_TRUE(differ) << workload::to_string(kind) << " insensitive to seed";
  }
}

TEST(ScenarioGenerate, PoissonMatchesBuildTraceExactly) {
  ScenarioSpec spec = small_spec(Scenario::kPoisson, 3.0, 15.0, 42);
  const auto scenario = workload::generate_scenario(spec);
  workload::TraceOptions topts;
  topts.dataset = spec.dataset;
  topts.rate = spec.rate;
  topts.horizon = spec.horizon;
  topts.seed = spec.seed;
  const auto classic = workload::build_trace(topts);
  ASSERT_EQ(scenario.size(), classic.size());
  for (std::size_t i = 0; i < scenario.size(); ++i) {
    EXPECT_EQ(scenario[i].arrival, classic[i].arrival);
    EXPECT_EQ(scenario[i].prompt_len, classic[i].prompt_len);
    EXPECT_EQ(scenario[i].output_len, classic[i].output_len);
  }
}

TEST(ScenarioGenerate, BurstyIsBurstierThanPoisson) {
  // Coefficient of variation of inter-arrival gaps: ~1 for Poisson, > 1 for
  // the on/off-modulated process.  Deterministic given the fixed seed.
  auto cv = [](const std::vector<workload::Request>& trace) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      gaps.push_back(trace[i].arrival - trace[i - 1].arrival);
    }
    double mean = 0, var = 0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return std::sqrt(var) / mean;
  };
  ScenarioSpec bursty = small_spec(Scenario::kBursty, 4.0, 200.0, 11);
  ScenarioSpec poisson = small_spec(Scenario::kPoisson, 4.0, 200.0, 11);
  EXPECT_GT(cv(workload::generate_scenario(bursty)),
            1.15 * cv(workload::generate_scenario(poisson)));
}

TEST(ScenarioGenerate, DiurnalPeaksAndTroughs) {
  // amplitude 1, period = horizon: peak near t = H/4, trough near t = 3H/4.
  ScenarioSpec spec = small_spec(Scenario::kDiurnal, 8.0, 400.0, 13);
  spec.diurnal_amplitude = 1.0;
  const auto trace = workload::generate_scenario(spec);
  std::size_t peak = 0, trough = 0;
  for (const auto& r : trace) {
    if (r.arrival >= 50 && r.arrival < 150) ++peak;      // around H/4
    if (r.arrival >= 250 && r.arrival < 350) ++trough;   // around 3H/4
  }
  EXPECT_GT(peak, 3 * std::max<std::size_t>(1, trough));
}

TEST(ScenarioGenerate, RampLoadsTheSecondHalf) {
  ScenarioSpec spec = small_spec(Scenario::kRamp, 8.0, 200.0, 17);
  const auto trace = workload::generate_scenario(spec);
  std::size_t first_half = 0, second_half = 0;
  for (const auto& r : trace) {
    (r.arrival < 100.0 ? first_half : second_half)++;
  }
  EXPECT_GT(second_half, first_half);
}

TEST(ScenarioGenerate, MultiTenantTagsAndMergesAllTenants) {
  ScenarioSpec spec = small_spec(Scenario::kMultiTenant, 6.0, 60.0, 19);
  const auto tenants = workload::effective_tenants(spec);
  ASSERT_EQ(tenants.size(), 3u);
  const auto trace = workload::generate_scenario(spec);
  std::set<int> seen;
  for (const auto& r : trace) seen.insert(r.tenant);
  EXPECT_EQ(seen.size(), tenants.size());
  for (int t : seen) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, static_cast<int>(tenants.size()));
  }
  // The chat tenant carries 60% of the rate; it must dominate the batch
  // tenant (10%) by a wide margin at this seed.
  std::size_t chat = 0, batch = 0;
  for (const auto& r : trace) {
    if (r.tenant == 0) ++chat;
    if (r.tenant == 2) ++batch;
  }
  EXPECT_GT(chat, 2 * batch);
  // Non-multi-tenant scenarios have no tenant list and tag nothing.
  EXPECT_TRUE(workload::effective_tenants(small_spec(Scenario::kBursty)).empty());
}

TEST(ScenarioGenerate, LongContextFractionControlsPromptMass) {
  ScenarioSpec heavy = small_spec(Scenario::kLongContext, 4.0, 100.0, 23);
  heavy.long_context_fraction = 0.9;
  ScenarioSpec light = heavy;
  light.long_context_fraction = 0.1;
  auto mean_prompt = [](const std::vector<workload::Request>& t) {
    double sum = 0;
    for (const auto& r : t) sum += static_cast<double>(r.prompt_len);
    return sum / static_cast<double>(t.size());
  };
  EXPECT_GT(mean_prompt(workload::generate_scenario(heavy)),
            2.0 * mean_prompt(workload::generate_scenario(light)));
}

TEST(ScenarioGenerate, InvalidParametersThrow) {
  ScenarioSpec spec = small_spec(Scenario::kBursty);
  spec.mean_on = 0;
  EXPECT_THROW(workload::generate_scenario(spec), std::invalid_argument);
  // Positive-but-tiny dwells would materialize billions of rate segments;
  // the validator must refuse rather than exhaust memory.
  spec = small_spec(Scenario::kBursty);
  spec.mean_on = spec.mean_off = 1e-9;
  EXPECT_THROW(workload::generate_scenario(spec), std::invalid_argument);
  spec = small_spec(Scenario::kDiurnal);
  spec.diurnal_amplitude = 1.5;
  EXPECT_THROW(workload::generate_scenario(spec), std::invalid_argument);
  spec = small_spec(Scenario::kDiurnal);
  spec.diurnal_segment = 1e-9;
  EXPECT_THROW(workload::generate_scenario(spec), std::invalid_argument);
  spec = small_spec(Scenario::kRamp);
  spec.diurnal_segment = 1e-9;
  EXPECT_THROW(workload::generate_scenario(spec), std::invalid_argument);
  spec = small_spec(Scenario::kLongContext);
  spec.long_context_fraction = -0.1;
  EXPECT_THROW(workload::generate_scenario(spec), std::invalid_argument);
  spec = small_spec(Scenario::kPoisson);
  spec.horizon = 0;
  EXPECT_THROW(workload::generate_scenario(spec), std::invalid_argument);
}

TEST(ScenarioServing, EveryEngineServesEveryScenario) {
  // Acceptance: all scenario generators are served by all three registered
  // engines, through the registry, with clean drains (empty warning).
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  for (Scenario kind : all_kinds()) {
    const auto trace = workload::generate_scenario(small_spec(kind, 2.0, 5.0, 31));
    ASSERT_FALSE(trace.empty());
    for (const char* name : {"splitwise", "hexgen", "hetis"}) {
      auto eng = engine::make(name, cluster, model);
      auto rep = engine::run_trace(*eng, trace, engine::RunOptions(900.0));
      EXPECT_EQ(rep.arrived, trace.size()) << name << " " << workload::to_string(kind);
      EXPECT_GT(rep.finished, 0u) << name << " " << workload::to_string(kind);
      EXPECT_FALSE(rep.drain_timeout_hit) << name << " " << workload::to_string(kind);
      EXPECT_EQ(rep.warning(), "") << name << " " << workload::to_string(kind);
    }
  }
}

/// Observer counting arrivals per tenant -- the attribution hook.
class TenantCounter : public engine::RunObserver {
 public:
  void on_arrival(const workload::Request& r) override { counts_[r.tenant]++; }
  const std::map<int, std::size_t>& counts() const { return counts_; }

 private:
  std::map<int, std::size_t> counts_;
};

TEST(ScenarioServing, TenantsFlowThroughObserverAndRecords) {
  ScenarioSpec spec = small_spec(Scenario::kMultiTenant, 4.0, 20.0, 37);
  const auto trace = workload::generate_scenario(spec);
  hw::Cluster cluster = harness::cluster_by_name("paper");
  auto eng = engine::make("hetis", cluster, model::model_by_name("Llama-13B"));
  TenantCounter counter;
  engine::RunOptions opts(900.0);
  opts.observer = &counter;
  engine::run_trace(*eng, trace, opts);

  // Observer sees every arrival with its tenant tag...
  std::map<int, std::size_t> expected;
  for (const auto& r : trace) expected[r.tenant]++;
  EXPECT_EQ(counter.counts(), expected);
  // ...and the records keep the tag for post-hoc attribution.
  std::map<int, std::size_t> recorded;
  for (const auto& rec : eng->metrics().records()) recorded[rec.tenant]++;
  EXPECT_EQ(recorded, expected);

  const auto summaries = harness::tenant_summaries(eng->metrics(), spec, /*warmup=*/0.0);
  ASSERT_EQ(summaries.size(), 3u);
  std::size_t total_arrived = 0;
  for (const auto& s : summaries) {
    total_arrived += s.arrived;
    EXPECT_GE(s.slo_attainment, 0.0);
    EXPECT_LE(s.slo_attainment, 1.0);
  }
  EXPECT_EQ(total_arrived, trace.size());
  EXPECT_EQ(summaries[0].tenant, "chat");
  EXPECT_EQ(summaries[2].tenant, "batch");
}

TEST(ScenarioSweep, ScenarioPointsRideTheHarness) {
  harness::ExperimentSpec spec;
  spec.name = "scenario-unit";
  spec.engines = {"splitwise", "hexgen", "hetis"};
  spec.horizon = 5.0;
  spec.seed = 41;
  spec.run = engine::RunOptions(900.0);
  spec.add_scenario(workload::scenario_preset(Scenario::kBursty, 2.0, 99.0, 99));
  spec.add_scenario(workload::scenario_preset(Scenario::kMultiTenant, 2.0, 99.0, 99));

  // add_scenario stamps the spec's seed and horizon.
  ASSERT_EQ(spec.workloads.size(), 2u);
  EXPECT_EQ(spec.workloads[0].scenario->seed, 41u);
  EXPECT_DOUBLE_EQ(spec.workloads[0].scenario->horizon, 5.0);

  const auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_GT(row.report.finished, 0u);
    EXPECT_EQ(row.report.warning(), "");
  }
  EXPECT_EQ(rows[0].scenario, "bursty");
  EXPECT_EQ(rows[3].scenario, "multi_tenant");
  EXPECT_TRUE(rows[0].tenants.empty());
  ASSERT_EQ(rows[3].tenants.size(), 3u);  // every engine gets a tenant breakdown
  ASSERT_EQ(rows[5].tenants.size(), 3u);

  // The scenario column lands in CSV and JSON.
  std::ostringstream csv;
  harness::write_csv(csv, rows);
  EXPECT_NE(csv.str().find(",bursty,"), std::string::npos);
  EXPECT_NE(csv.str().find(",multi_tenant,"), std::string::npos);
  std::ostringstream json;
  harness::write_json(json, rows);
  EXPECT_NE(json.str().find("\"scenario\":\"multi_tenant\""), std::string::npos);
  EXPECT_NE(json.str().find("\"tenants\":[{\"tenant\":\"chat\""), std::string::npos);
}

}  // namespace
}  // namespace hetis
