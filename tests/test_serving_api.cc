// RunOptions semantics: warmup-window exclusion, SLO attainment/goodput
// math (on a deterministic synthetic engine), drain-timeout surfacing, and
// RunObserver event ordering on real engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/instance.h"
#include "engine/registry.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace hetis {
namespace {

// A deterministic engine: per request, first token at arrival + ttft(r)
// and one decode token every tpot(r) seconds until output_len is reached.
class FakeEngine : public engine::Engine {
 public:
  std::function<Seconds(const workload::Request&)> ttft = [](const workload::Request&) {
    return 0.1;
  };
  std::function<Seconds(const workload::Request&)> tpot = [](const workload::Request&) {
    return 0.01;
  };
  std::function<bool(const workload::Request&)> completes = [](const workload::Request&) {
    return true;
  };

  std::string name() const override { return "Fake"; }
  Bytes usable_kv_capacity() const override { return GiB; }

  void submit(sim::Simulation& sim, const workload::Request& r) override {
    metrics_.on_arrival(r);
    if (!completes(r)) return;
    Seconds first = r.arrival + ttft(r);
    sim.schedule_at(first, [this, id = r.id, first] { metrics_.on_first_token(id, first); });
    Seconds step = tpot(r);
    Seconds fin = first + static_cast<double>(r.output_len - 1) * step;
    sim.schedule_at(fin, [this, id = r.id, fin] { metrics_.on_finish(id, fin); });
  }
};

std::vector<workload::Request> synthetic_trace(std::size_t n, Seconds spacing,
                                               std::int64_t output_len) {
  std::vector<workload::Request> trace;
  for (std::size_t i = 0; i < n; ++i) {
    workload::Request r;
    r.id = static_cast<workload::RequestId>(i);
    r.arrival = spacing * static_cast<double>(i);
    r.prompt_len = 64;
    r.output_len = output_len;
    trace.push_back(r);
  }
  return trace;
}

TEST(RunOptionsWarmup, ExcludesEarlyRequestsFromPercentiles) {
  FakeEngine eng;
  // Requests arriving before t=5 are 100x slower -- a classic cold start.
  eng.ttft = [](const workload::Request& r) { return r.arrival < 5.0 ? 10.0 : 0.1; };
  auto trace = synthetic_trace(10, 1.0, /*output_len=*/2);

  engine::RunOptions cold(600.0);
  auto rep_all = engine::run_trace(eng, trace, cold);
  EXPECT_EQ(rep_all.measured, 10u);
  EXPECT_GT(rep_all.ttft_p95, 5.0);  // dominated by the cold start

  FakeEngine eng2;
  eng2.ttft = eng.ttft;
  engine::RunOptions warm(600.0);
  warm.warmup = 5.0;
  auto rep = engine::run_trace(eng2, trace, warm);
  EXPECT_EQ(rep.arrived, 10u);
  EXPECT_EQ(rep.finished, 10u);   // warmup requests still served...
  EXPECT_EQ(rep.measured, 5u);    // ...but not measured
  EXPECT_LE(rep.ttft_p95, 0.1 + 1e-12);
  EXPECT_FALSE(rep.drain_timeout_hit);
}

TEST(RunOptionsSlo, AttainmentAndGoodputMath) {
  FakeEngine eng;
  // ids 0-3 meet TTFT (<= 0.5); ids 0-5 meet TPOT (<= 0.1); both: ids 0-3.
  eng.ttft = [](const workload::Request& r) { return r.id < 4 ? 0.05 : 1.0; };
  eng.tpot = [](const workload::Request& r) { return r.id < 6 ? 0.01 : 0.5; };
  auto trace = synthetic_trace(10, 1.0, /*output_len=*/2);

  engine::RunOptions opts(600.0);
  engine::SloSpec slo;
  slo.ttft = 0.5;
  slo.tpot = 0.1;
  opts.slo = slo;
  auto rep = engine::run_trace(eng, trace, opts);

  EXPECT_TRUE(rep.slo_set);
  EXPECT_DOUBLE_EQ(rep.slo_ttft, 0.5);
  EXPECT_DOUBLE_EQ(rep.slo_tpot, 0.1);
  EXPECT_DOUBLE_EQ(rep.ttft_attainment, 0.4);
  EXPECT_DOUBLE_EQ(rep.tpot_attainment, 0.6);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 0.4);
  // Makespan: first arrival t=0 to the last finish (id 9: 9 + 1.0 + 0.5).
  EXPECT_NEAR(rep.makespan, 10.5, 1e-9);
  EXPECT_NEAR(rep.goodput, 4.0 / 10.5, 1e-9);
  EXPECT_NEAR(rep.throughput, 10.0 / 10.5, 1e-9);
}

TEST(RunOptionsSlo, GoodputUsesTheMeasuredSpanUnderWarmup) {
  FakeEngine eng;
  eng.ttft = [](const workload::Request&) { return 0.05; };
  eng.tpot = [](const workload::Request&) { return 0.01; };
  auto trace = synthetic_trace(10, 1.0, /*output_len=*/2);

  engine::RunOptions opts(600.0);
  opts.warmup = 5.0;
  engine::SloSpec slo;
  slo.ttft = 0.5;
  slo.tpot = 0.1;
  opts.slo = slo;
  auto rep = engine::run_trace(eng, trace, opts);

  EXPECT_EQ(rep.measured, 5u);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 1.0);
  // Denominator is the measured span (first measured arrival t=5 to the
  // last measured finish t=9.06), not the warmup-inclusive makespan.
  EXPECT_NEAR(rep.goodput, 5.0 / 4.06, 1e-9);
  EXPECT_NEAR(rep.makespan, 9.06, 1e-9);
}

TEST(RunOptionsSlo, UnfinishedRequestsCountAsMisses) {
  FakeEngine eng;
  // Half the requests never finish (overload); the surviving half all meet
  // the targets.  Attainment must grade the whole arrived population.
  eng.completes = [](const workload::Request& r) { return r.id < 5; };
  auto trace = synthetic_trace(10, 1.0, /*output_len=*/2);

  engine::RunOptions opts(600.0);
  engine::SloSpec slo;
  slo.ttft = 0.5;
  slo.tpot = 0.1;
  opts.slo = slo;
  auto rep = engine::run_trace(eng, trace, opts);

  EXPECT_EQ(rep.finished, 5u);
  EXPECT_TRUE(rep.drain_timeout_hit);
  EXPECT_DOUBLE_EQ(rep.ttft_attainment, 0.5);
  EXPECT_DOUBLE_EQ(rep.tpot_attainment, 0.5);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 0.5);
}

TEST(RunOptionsSlo, UnsetLeavesSloBlockEmpty) {
  FakeEngine eng;
  auto rep = engine::run_trace(eng, synthetic_trace(3, 1.0, 2), engine::RunOptions(600.0));
  EXPECT_FALSE(rep.slo_set);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 0.0);
  EXPECT_DOUBLE_EQ(rep.goodput, 0.0);
}

TEST(RunOptionsDrain, TimeoutHitIsSurfacedNotSilent) {
  FakeEngine eng;
  eng.completes = [](const workload::Request&) { return false; };  // nothing ever completes
  auto rep = engine::run_trace(eng, synthetic_trace(4, 1.0, 2), engine::RunOptions(5.0));
  EXPECT_EQ(rep.finished, 0u);
  EXPECT_TRUE(rep.drain_timeout_hit);
  std::string warning = rep.warning();
  EXPECT_NE(warning.find("drain timeout"), std::string::npos) << warning;
  EXPECT_NE(warning.find("Fake"), std::string::npos) << warning;
  EXPECT_NE(warning.find("4/4"), std::string::npos) << warning;
}

TEST(RunOptionsDrain, CleanDrainHasNoWarning) {
  FakeEngine eng;
  auto rep = engine::run_trace(eng, synthetic_trace(4, 1.0, 2), engine::RunOptions(600.0));
  EXPECT_FALSE(rep.drain_timeout_hit);
  EXPECT_EQ(rep.warning(), "");
}

TEST(RunOptionsDrain, PeriodicEngineEventsAreNotMistakenForTruncation) {
  // An unbounded usage-sampling chain keeps the event queue non-empty
  // forever; a fully-drained run must still report a clean drain.
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  engine::EngineOptions opts = [] {
    engine::HetisConfig cfg;
    cfg.sample_interval = 1.0;
    cfg.sample_horizon = 0.0;  // unbounded
    return cfg;
  }();
  auto eng = engine::make("hetis", cluster, m, opts);
  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kShareGPT;
  topts.rate = 2.0;
  topts.horizon = 8.0;
  topts.seed = 31;
  auto rep = engine::run_trace(*eng, workload::build_trace(topts), engine::RunOptions(900.0));
  EXPECT_EQ(rep.finished, rep.arrived);
  EXPECT_FALSE(rep.drain_timeout_hit);
  EXPECT_EQ(rep.warning(), "");
}

// --- RunObserver ---

struct Events {
  Seconds arrival = -1;
  Seconds prefill_done = -1;
  Seconds finish = -1;
  std::vector<Seconds> token_times;
  std::vector<std::int64_t> token_counts;
  int preempts = 0;
};

class RecordingObserver : public engine::RunObserver {
 public:
  void on_arrival(const workload::Request& r) override { events_[r.id].arrival = r.arrival; }
  void on_prefill_done(workload::RequestId id, Seconds t) override {
    events_[id].prefill_done = t;
  }
  void on_token(workload::RequestId id, Seconds t, std::int64_t generated) override {
    events_[id].token_times.push_back(t);
    events_[id].token_counts.push_back(generated);
  }
  void on_finish(workload::RequestId id, Seconds t) override { events_[id].finish = t; }
  void on_preempt(workload::RequestId id, Seconds t) override {
    (void)t;
    ++events_[id].preempts;
  }

  const std::map<workload::RequestId, Events>& events() const { return events_; }

 private:
  std::map<workload::RequestId, Events> events_;
};

std::vector<workload::Request> observer_trace() {
  workload::TraceOptions opts;
  opts.dataset = workload::Dataset::kShareGPT;
  opts.rate = 2.0;
  opts.horizon = 8.0;
  opts.seed = 31;
  return workload::build_trace(opts);
}

void check_event_ordering(const std::string& engine_name) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  auto eng = engine::make(engine_name, cluster, m);
  RecordingObserver obs;
  engine::RunOptions opts(900.0);
  opts.observer = &obs;
  auto trace = observer_trace();
  auto rep = engine::run_trace(*eng, trace, opts);

  ASSERT_EQ(rep.finished, trace.size()) << engine_name;
  ASSERT_EQ(obs.events().size(), trace.size()) << engine_name;
  for (const auto& [id, ev] : obs.events()) {
    SCOPED_TRACE(engine_name + " request " + std::to_string(id));
    // Every lifecycle stage was observed, in causal order.
    ASSERT_GE(ev.arrival, 0.0);
    ASSERT_GE(ev.prefill_done, 0.0);
    ASSERT_GE(ev.finish, 0.0);
    EXPECT_LE(ev.arrival, ev.prefill_done);
    EXPECT_LE(ev.prefill_done, ev.finish);
    for (std::size_t i = 0; i < ev.token_times.size(); ++i) {
      EXPECT_GE(ev.token_times[i], ev.prefill_done);
      EXPECT_LE(ev.token_times[i], ev.finish);
      if (i > 0) {
        EXPECT_GE(ev.token_times[i], ev.token_times[i - 1]);
        // Monotone progress -- except across a preemption, which recomputes.
        if (ev.preempts == 0) {
          EXPECT_GT(ev.token_counts[i], ev.token_counts[i - 1]);
        }
      }
    }
    if (ev.preempts == 0) {
      // The prefill-produced first token is signaled by prefill_done;
      // on_token covers the remaining output_len - 1 decode tokens.
      auto it = std::find_if(trace.begin(), trace.end(),
                             [id = id](const workload::Request& r) { return r.id == id; });
      ASSERT_NE(it, trace.end());
      EXPECT_EQ(static_cast<std::int64_t>(ev.token_times.size()), it->output_len - 1);
    }
  }
}

TEST(RunObserver, EventOrderingHetis) { check_event_ordering("hetis"); }
TEST(RunObserver, EventOrderingHexgen) { check_event_ordering("hexgen"); }
TEST(RunObserver, EventOrderingSplitwise) { check_event_ordering("splitwise"); }

TEST(RunObserver, ObserverIsDetachedAfterTheRun) {
  FakeEngine eng;
  RecordingObserver obs;
  engine::RunOptions opts(600.0);
  opts.observer = &obs;
  engine::run_trace(eng, synthetic_trace(2, 1.0, 2), opts);
  std::size_t seen = obs.events().size();
  EXPECT_EQ(seen, 2u);
  // Post-run events on the SAME engine's metrics must no longer reach the
  // observer -- run_trace detaches it on exit.
  workload::Request late;
  late.id = 99;
  late.arrival = 100.0;
  late.prompt_len = 8;
  late.output_len = 2;
  eng.metrics().on_arrival(late);
  EXPECT_EQ(obs.events().size(), seen);
  EXPECT_EQ(obs.events().count(99), 0u);
}

TEST(RunObserver, ObserverIsDetachedWhenTheRunThrows) {
  FakeEngine eng;
  RecordingObserver obs;
  engine::RunOptions opts(600.0);
  opts.observer = &obs;
  // Duplicate ids make MetricsCollector throw mid-run; the observer must
  // still be detached so the engine holds no dangling pointer.
  auto trace = synthetic_trace(2, 1.0, 2);
  trace[1].id = trace[0].id;
  EXPECT_THROW(engine::run_trace(eng, trace, opts), std::logic_error);
  workload::Request late;
  late.id = 98;
  late.arrival = 100.0;
  late.prompt_len = 8;
  late.output_len = 2;
  eng.metrics().on_arrival(late);
  EXPECT_EQ(obs.events().count(98), 0u);
}

// --- Tenant-priority admission ---

TEST(TenantPriority, PriorityEnqueueOrdersByClassThenId) {
  auto make = [](workload::RequestId id, int tenant) {
    engine::LiveRequest lr;
    lr.req.id = id;
    lr.req.tenant = tenant;
    return lr;
  };
  const std::vector<int> prios{2, 0, 1};
  std::deque<engine::LiveRequest> q;
  engine::priority_enqueue(q, make(0, 1), prios, false);  // prio 0
  engine::priority_enqueue(q, make(1, 0), prios, false);  // prio 2
  engine::priority_enqueue(q, make(2, 2), prios, false);  // prio 1
  engine::priority_enqueue(q, make(3, 0), prios, false);  // prio 2, later id
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q[0].req.id, 1);  // highest priority, lowest id first
  EXPECT_EQ(q[1].req.id, 3);
  EXPECT_EQ(q[2].req.id, 2);
  EXPECT_EQ(q[3].req.id, 0);
  // Unknown tenants fall back to priority 0.
  engine::priority_enqueue(q, make(4, 17), prios, false);
  EXPECT_EQ(q.back().req.id, 4);

  // Empty priorities keep the historical FCFS semantics exactly.
  std::deque<engine::LiveRequest> fcfs;
  engine::priority_enqueue(fcfs, make(0, 0), {}, false);
  engine::priority_enqueue(fcfs, make(1, 0), {}, false);
  engine::priority_enqueue(fcfs, make(2, 0), {}, /*requeue_front=*/true);
  EXPECT_EQ(fcfs[0].req.id, 2);
  EXPECT_EQ(fcfs[1].req.id, 0);
  EXPECT_EQ(fcfs[2].req.id, 1);
}

/// A backlog of low-priority prompts followed by one high-priority arrival:
/// with priorities installed the high-priority request must jump the queue.
std::vector<workload::Request> backlog_trace() {
  std::vector<workload::Request> trace;
  for (int i = 0; i < 12; ++i) {
    workload::Request r;
    r.id = i;
    r.arrival = 0.005 * i;
    r.prompt_len = 512;
    r.output_len = 8;
    r.tenant = 1;  // best-effort class
    trace.push_back(r);
  }
  workload::Request vip;
  vip.id = 12;
  vip.arrival = 0.1;  // arrives behind the whole backlog
  vip.prompt_len = 512;
  vip.output_len = 8;
  vip.tenant = 0;  // interactive class
  trace.push_back(vip);
  return trace;
}

TEST(TenantPriority, HighPriorityTenantJumpsTheAdmissionQueue) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");
  auto trace = backlog_trace();

  auto ttft_of_vip = [&](bool prioritized, Seconds* fcfs_sum = nullptr) {
    engine::HexgenConfig cfg;
    cfg.max_prefill_tokens = 512;  // one prompt per prefill iteration
    engine::EngineOptions opts(cfg);
    if (prioritized) opts.tenant_priorities = {2, 0};
    auto eng = engine::make("hexgen", cluster, m, opts);
    engine::RunReport rep = engine::run_trace(*eng, trace, engine::RunOptions(900.0));
    EXPECT_EQ(rep.finished, trace.size());
    if (fcfs_sum) {
      for (const auto& rec : eng->metrics().records()) *fcfs_sum += rec.ttft();
    }
    return eng->metrics().record(12).ttft();
  };

  const Seconds fcfs = ttft_of_vip(false);
  const Seconds prioritized = ttft_of_vip(true);
  EXPECT_LT(prioritized, fcfs);
}

TEST(TenantPriority, HarnessWiresMultiTenantPrioritiesAutomatically) {
  // A multi_tenant sweep row must equal a direct run WITH the scenario's
  // tenant priorities installed -- and differ from a FCFS run, proving the
  // harness actually forwarded them.
  harness::ExperimentSpec spec;
  spec.engines = {"hexgen"};
  spec.models = {"Llama-13B"};
  spec.horizon = 6.0;
  spec.seed = 41;
  spec.run = engine::RunOptions(900.0);
  spec.add_scenario(workload::scenario_preset(workload::Scenario::kMultiTenant, 8.0,
                                              spec.horizon, spec.seed));
  auto rows = harness::run_sweep(spec);
  ASSERT_EQ(rows.size(), 1u);

  auto trace = workload::generate_scenario(*spec.workloads[0].scenario);
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& m = model::model_by_name("Llama-13B");

  engine::EngineOptions with_prios;
  for (const auto& t : workload::effective_tenants(*spec.workloads[0].scenario)) {
    with_prios.tenant_priorities.push_back(t.priority);
  }
  auto eng = engine::make("hexgen", cluster, m, with_prios);
  auto direct = engine::run_trace(*eng, trace, engine::RunOptions(900.0));
  EXPECT_EQ(rows[0].report.to_csv_row(), direct.to_csv_row());

  auto fcfs_eng = engine::make("hexgen", cluster, m);
  auto fcfs = engine::run_trace(*fcfs_eng, trace, engine::RunOptions(900.0));
  EXPECT_NE(rows[0].report.to_csv_row(), fcfs.to_csv_row());
}

}  // namespace
}  // namespace hetis
