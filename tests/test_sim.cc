// Unit tests: discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace hetis::sim {
namespace {

TEST(EventQueue, TimeOrdering) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableTieBreak) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NegativeTimeThrows) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(1.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  Seconds seen = -1;
  sim.schedule_in(2.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulation, ScheduleAtPastClampsToNow) {
  Simulation sim;
  sim.schedule_in(5.0, [&] {
    sim.schedule_at(1.0, [] {});  // in the past; must not go backwards
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, RunUntilHorizonStopsEarly) {
  Simulation sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(10.0, [&] { ++fired; });
  std::size_t n = sim.run_until(5.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulation, EventsExactlyAtHorizonRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_in(5.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CascadingEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(0.01, recurse);
  };
  sim.schedule_in(0.0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_NEAR(sim.now(), 0.99, 1e-9);
}

TEST(Simulation, RunAllGuardsAgainstRunaway) {
  Simulation sim;
  std::function<void()> forever = [&] { sim.schedule_in(0.001, forever); };
  sim.schedule_in(0.0, forever);
  EXPECT_THROW(sim.run_all(1000), std::runtime_error);
}

TEST(Simulation, ZeroDelayEventsRunInOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_in(0.0, [&] { order.push_back(1); });
  sim.schedule_in(0.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulation, IdleReflectsQueue) {
  Simulation sim;
  EXPECT_TRUE(sim.idle());
  sim.schedule_in(1.0, [] {});
  EXPECT_FALSE(sim.idle());
  sim.run_all();
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace hetis::sim
