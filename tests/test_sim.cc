// Unit tests: discrete-event engine.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "sim/arena.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace hetis::sim {
namespace {

TEST(EventQueue, TimeOrdering) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableTieBreak) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NegativeTimeThrows) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(1.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  Seconds seen = -1;
  sim.schedule_in(2.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulation, ScheduleAtPastClampsToNow) {
  Simulation sim;
  sim.schedule_in(5.0, [&] {
    sim.schedule_at(1.0, [] {});  // in the past; must not go backwards
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, RunUntilHorizonStopsEarly) {
  Simulation sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(10.0, [&] { ++fired; });
  std::size_t n = sim.run_until(5.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulation, EventsExactlyAtHorizonRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_in(5.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CascadingEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(0.01, recurse);
  };
  sim.schedule_in(0.0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_NEAR(sim.now(), 0.99, 1e-9);
}

TEST(Simulation, RunAllGuardsAgainstRunaway) {
  Simulation sim;
  std::function<void()> forever = [&] { sim.schedule_in(0.001, forever); };
  sim.schedule_in(0.0, forever);
  EXPECT_THROW(sim.run_all(1000), std::runtime_error);
}

TEST(Simulation, ZeroDelayEventsRunInOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_in(0.0, [&] { order.push_back(1); });
  sim.schedule_in(0.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulation, IdleReflectsQueue) {
  Simulation sim;
  EXPECT_TRUE(sim.idle());
  sim.schedule_in(1.0, [] {});
  EXPECT_FALSE(sim.idle());
  sim.run_all();
  EXPECT_TRUE(sim.idle());
}

TEST(Simulation, PastScheduleAtOrdersAfterExistingSameTimeEvents) {
  // A clamped-to-now event gets a fresh sequence number, so it fires after
  // everything already queued at the current instant.
  Simulation sim;
  std::vector<int> order;
  sim.schedule_in(5.0, [&] {
    order.push_back(1);
    sim.schedule_at(1.0, [&] { order.push_back(3); });  // past; clamps to 5.0
  });
  sim.schedule_in(5.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, MoveOnlyEventCallable) {
  // EventTask is move-only, so events may own move-only state -- which
  // std::function (copyable by contract) forbade.
  Simulation sim;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  sim.schedule_in(1.0, [p = std::move(payload), &seen] { seen = *p + 1; });
  sim.run_all();
  EXPECT_EQ(seen, 42);
}

// --- Differential and property tests: calendar tier vs the (time, seq)
// --- contract.

// Reference model: a std::set ordered by (time, seq) pops its begin() --
// trivially correct (time, seq)-ascending order.
using RefEvent = std::tuple<Seconds, std::uint64_t, int>;

TEST(EventQueueDifferential, RandomizedInterleavingsMatchReference) {
  // 10k seeded events per round -- enough to cross kCalendarOn -- with
  // half the timestamps on a coarse grid to force duplicates, then a drain
  // loop that keeps pushing (including zero-delay re-pushes at the
  // just-popped instant, the binary-insert path of the current bucket).
  for (std::uint64_t seed : {1ull, 42ull, 20251116ull}) {
    EventQueue q;
    std::set<RefEvent> ref;
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> wide(0.0, 512.0);
    std::uniform_int_distribution<int> grid(0, 63);
    std::uniform_int_distribution<int> action(0, 99);

    std::uint64_t seq = 0;
    int next_label = 0;
    std::vector<int> fired;
    auto push_both = [&](Seconds t) {
      const int label = next_label++;
      q.push(t, [&fired, label] { fired.push_back(label); });
      ref.emplace(t, seq++, label);
    };

    for (int i = 0; i < 10000; ++i) {
      push_both(action(rng) < 50 ? static_cast<Seconds>(grid(rng)) * 8.0 : wide(rng));
    }
    EXPECT_TRUE(q.calendar_active());

    while (!q.empty()) {
      ASSERT_EQ(q.size(), ref.size());
      const RefEvent expect = *ref.begin();
      ref.erase(ref.begin());
      ASSERT_EQ(q.next_time(), std::get<0>(expect));
      q.pop().fn();
      ASSERT_FALSE(fired.empty());
      ASSERT_EQ(fired.back(), std::get<2>(expect));
      const Seconds now = std::get<0>(expect);
      const int a = action(rng);
      if (a < 10) {
        push_both(now);  // zero-delay reschedule at the popped instant
      } else if (a < 25 && next_label < 14000) {
        push_both(now + wide(rng));
      }
    }
    EXPECT_TRUE(ref.empty());
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(next_label));
  }
}

TEST(EventQueue, CalendarTierEngagesAndFallsBackWhenSparse) {
  EventQueue q;
  std::vector<Seconds> popped;
  auto record = [&q, &popped](Seconds t) {
    q.push(t, [&popped, t] { popped.push_back(t); });
  };
  // A dense burst activates the calendar tier.
  for (int i = 0; i < 10000; ++i) record(static_cast<Seconds>(i) * 1e-4);
  EXPECT_TRUE(q.calendar_active());
  // Drain past the first window (rebuild #1 re-windows over the dense
  // remainder, which is still above kCalendarOff) into the second window.
  for (int i = 0; i < 9000; ++i) q.pop().fn();
  EXPECT_TRUE(q.calendar_active());
  // A sparse far tail pushed now lands past the second window's end, so it
  // pools in overflow; when the window exhausts, rebuild #2 finds only
  // 500 pending events -- below kCalendarOff -- and drops back to the heap.
  for (int i = 0; i < 500; ++i) record(1e6 + static_cast<Seconds>(i));
  for (int i = 0; i < 1000; ++i) q.pop().fn();
  ASSERT_EQ(q.size(), 500u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1e6);
  EXPECT_FALSE(q.calendar_active());
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(popped.size(), 10500u);
  for (std::size_t i = 1; i < popped.size(); ++i) EXPECT_LE(popped[i - 1], popped[i]);
}

TEST(Simulation, CalendarSameInstantFifoSurvivesReschedules) {
  // 10k events at one instant land in a single calendar bucket; the first
  // 100 self-reschedule at the same instant mid-drain.  FIFO (seq) order
  // must hold across both generations.
  Simulation sim;
  constexpr int kN = 10000;
  std::vector<int> order;
  order.reserve(kN + 100);
  for (int i = 0; i < kN; ++i) {
    sim.schedule_at(1.0, [&sim, &order, i] {
      order.push_back(i);
      if (i < 100) sim.schedule_at(1.0, [&order, i] { order.push_back(kN + i); });
    });
  }
  sim.run_all();
  std::vector<int> want;
  want.reserve(kN + 100);
  for (int i = 0; i < kN; ++i) want.push_back(i);
  for (int i = 0; i < 100; ++i) want.push_back(kN + i);
  EXPECT_EQ(order, want);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

// --- EventTask + EventArena ---

TEST(EventTask, LargeCaptureSpillsToArenaAndRecycles) {
  EventQueue q;
  struct Big {
    double pad[16];  // 128 bytes > EventTask::kInlineSize
  };
  Big big{};
  big.pad[0] = 7.0;
  double seen = 0;
  q.push(1.0, [big, &seen] { seen = big.pad[0]; });
  EXPECT_EQ(q.arena().live_blocks(), 1);
  {
    EventQueue::Event ev = q.pop();
    ev.fn();
  }
  EXPECT_DOUBLE_EQ(seen, 7.0);
  EXPECT_EQ(q.arena().live_blocks(), 0);
  // The freed block recycles through the size-class free list: the second
  // spill performs no slab carve and no global allocation.
  q.push(2.0, [big, &seen] { seen = big.pad[0] * 2; });
  EXPECT_GE(q.arena().freelist_hits(), 1u);
  EXPECT_EQ(q.arena().oversize_allocations(), 0u);
  q.clear();
  EXPECT_EQ(q.arena().live_blocks(), 0);
}

TEST(EventTask, SmallCaptureStaysInline) {
  EventQueue q;
  int hits = 0;
  q.push(1.0, [&hits] { ++hits; });
  EXPECT_EQ(q.arena().live_blocks(), 0);  // inline storage, no arena block
  q.pop().fn();
  EXPECT_EQ(hits, 1);
}

TEST(EventArena, RecyclesBlocksThroughFreeLists) {
  EventArena a;
  void* p = a.allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.live_blocks(), 1);
  a.deallocate(p, 100);
  EXPECT_EQ(a.live_blocks(), 0);
  // 80 bytes maps to the same 64-byte-granule class as 100: the freed
  // block comes straight back off the free list.
  void* p2 = a.allocate(80);
  EXPECT_EQ(p2, p);
  EXPECT_EQ(a.freelist_hits(), 1u);
  a.deallocate(p2, 80);
}

TEST(EventArena, OversizeFallsThroughToGlobalAllocator) {
  EventArena a;
  ASSERT_GT(4096u, EventArena::max_pooled_size());
  void* p = a.allocate(4096);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.oversize_allocations(), 1u);
  EXPECT_EQ(a.live_blocks(), 1);
  a.deallocate(p, 4096);
  EXPECT_EQ(a.live_blocks(), 0);
}

}  // namespace
}  // namespace hetis::sim
