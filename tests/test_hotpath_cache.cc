// Differential tests for the hot-path caches (PR: warm-started dispatch LP
// + cost-model memoization).  The contract under test is strict: every
// cached path must return results BIT-identical to the cold path it
// shadows -- not approximately equal, byte-for-byte equal -- because the
// repo's golden CSVs are byte-compared in CI and a single ULP of drift in
// a dispatch decision cascades into a different event trace.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "costmodel/kernel_model.h"
#include "dispatch/dispatcher.h"
#include "engine/exec.h"
#include "hw/topology.h"
#include "lp/minmax.h"
#include "lp/workspace.h"
#include "model/llm.h"
#include "parallel/plan.h"

namespace hetis {
namespace {

/// Bit pattern of a double: the identity the golden-determinism contract
/// actually needs.  EXPECT_EQ on doubles would conflate -0.0 with 0.0 and
/// reject NaN self-matches; comparing bits does neither.
std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

void expect_bits_eq(double a, double b) { EXPECT_EQ(bits(a), bits(b)); }

void expect_heads_identical(const std::vector<std::vector<double>>& a,
                            const std::vector<std::vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) expect_bits_eq(a[i][j], b[i][j]);
  }
}

/// A feasible randomized min-max dispatch problem (shapes the Dispatcher
/// actually builds: one device row per logical device, one column per
/// request, group-divisible demand).
lp::MinMaxProblem random_problem(Rng& rng, std::size_t d, std::size_t j, int group) {
  lp::MinMaxProblem p;
  p.group_size = group;
  for (std::size_t i = 0; i < d; ++i) {
    p.base_time.push_back(rng.uniform(0.0, 1e-3));
    p.head_cost.push_back(rng.uniform(1e-7, 5e-6));
    p.cache_cost.push_back(rng.uniform(1e-15, 1e-12));
    p.mem_free.push_back(rng.uniform(1e9, 4e10));
  }
  for (std::size_t r = 0; r < j; ++r) {
    p.demand.push_back(static_cast<double>(group * static_cast<int>(rng.uniform_int(1, 8))));
    p.cache_per_head.push_back(rng.uniform(1e3, 1e6));
  }
  return p;
}

// --- SolveWorkspace: warm path vs cold path -------------------------------

TEST(SolveWorkspace, RelaxedMatchesColdOnRandomizedProblems) {
  Rng rng(20251116);
  lp::SolveWorkspace ws;
  for (int trial = 0; trial < 60; ++trial) {
    lp::MinMaxProblem p =
        random_problem(rng, 2 + trial % 5, 1 + trial % 9, 1 + (trial % 2) * 7);
    lp::MinMaxSolution cold = lp::solve_relaxed(p);
    const lp::MinMaxSolution& warm = lp::solve_relaxed(p, ws);
    EXPECT_EQ(cold.status, warm.status);
    expect_bits_eq(cold.objective, warm.objective);
    expect_heads_identical(cold.heads, warm.heads);
  }
}

TEST(SolveWorkspace, RepeatedProblemHitsWarmPathBitIdentically) {
  Rng rng(7);
  lp::SolveWorkspace ws;
  lp::MinMaxProblem p = random_problem(rng, 4, 6, 8);
  lp::MinMaxSolution first = lp::solve_relaxed(p, ws);  // copy the cold result
  ASSERT_EQ(ws.stats().warm_hits, 0u);
  const lp::MinMaxSolution& again = lp::solve_relaxed(p, ws);
  EXPECT_EQ(ws.stats().solves, 2u);
  EXPECT_EQ(ws.stats().warm_hits, 1u);
  EXPECT_EQ(first.status, again.status);
  expect_bits_eq(first.objective, again.objective);
  expect_heads_identical(first.heads, again.heads);
}

TEST(SolveWorkspace, SignedZeroKeysDifferently) {
  // The memo keys on bit patterns, not double values: a problem with -0.0
  // base time is NOT the same key as one with +0.0 (operator== would say
  // so), so the warm path can never alias them.
  Rng rng(11);
  lp::SolveWorkspace ws;
  lp::MinMaxProblem p = random_problem(rng, 3, 4, 1);
  p.base_time[0] = 0.0;
  lp::solve_relaxed(p, ws);
  p.base_time[0] = -0.0;
  lp::solve_relaxed(p, ws);
  EXPECT_EQ(ws.stats().warm_hits, 0u);
}

TEST(SolveWorkspace, GreedyMatchesColdOnRandomizedProblems) {
  Rng rng(20251116);
  lp::SolveWorkspace ws;
  for (int trial = 0; trial < 60; ++trial) {
    lp::MinMaxProblem p =
        random_problem(rng, 2 + trial % 4, 1 + trial % 7, 1 + (trial % 3) * 3);
    std::vector<std::vector<int>> cold = lp::greedy_dispatch(p);
    const std::vector<std::vector<int>>& warm = lp::greedy_dispatch(p, ws);
    EXPECT_EQ(cold, warm);
    expect_bits_eq(lp::eval_makespan(p, cold), lp::greedy_makespan(p, ws));
  }
}

TEST(SolveWorkspace, DegenerateTiesResolveIdentically) {
  // Every device identical -> the argmin tie-breaks purely by scan order in
  // both paths.  Any divergence here would flip real dispatch decisions.
  lp::MinMaxProblem p;
  p.group_size = 4;
  for (int i = 0; i < 6; ++i) {
    p.base_time.push_back(0.5);
    p.head_cost.push_back(1e-6);
    p.cache_cost.push_back(1e-13);
    p.mem_free.push_back(1e10);
  }
  for (int r = 0; r < 5; ++r) {
    p.demand.push_back(8);
    p.cache_per_head.push_back(4096);
  }
  lp::SolveWorkspace ws;
  EXPECT_EQ(lp::greedy_dispatch(p), lp::greedy_dispatch(p, ws));
  lp::MinMaxSolution cold = lp::solve_relaxed(p);
  const lp::MinMaxSolution& warm = lp::solve_relaxed(p, ws);
  EXPECT_EQ(cold.status, warm.status);
  expect_bits_eq(cold.objective, warm.objective);
  expect_heads_identical(cold.heads, warm.heads);
}

TEST(SolveWorkspace, DeviceSetAlternationSurvivesEvictionChurn) {
  // Adversarial replacement pattern: a tiny 2-slot table cycling through
  // more problems than it can hold (d alternating 4 <-> 2, like a device
  // leave/join flap).  Every answer must still match a cold solve -- the
  // memo may evict whatever it likes, it may never corrupt.
  Rng rng(42);
  lp::SolveWorkspace ws(2);
  std::vector<lp::MinMaxProblem> probs;
  for (int k = 0; k < 8; ++k) probs.push_back(random_problem(rng, k % 2 ? 4 : 2, 3, 1));
  for (int round = 0; round < 5; ++round) {
    for (const lp::MinMaxProblem& p : probs) {
      lp::MinMaxSolution cold = lp::solve_relaxed(p);
      const lp::MinMaxSolution& warm = lp::solve_relaxed(p, ws);
      EXPECT_EQ(cold.status, warm.status);
      expect_bits_eq(cold.objective, warm.objective);
      expect_heads_identical(cold.heads, warm.heads);
      EXPECT_EQ(lp::greedy_dispatch(p), lp::greedy_dispatch(p, ws));
    }
  }
}

TEST(SolveWorkspace, MalformedProblemThrowsAndNeverOccupiesASlot) {
  Rng rng(3);
  lp::SolveWorkspace ws(2);
  lp::MinMaxProblem good = random_problem(rng, 3, 4, 1);
  lp::MinMaxSolution cold = lp::solve_relaxed(good, ws);  // copy
  const std::vector<std::vector<int>> greedy_cold = lp::greedy_dispatch(good, ws);

  lp::MinMaxProblem bad = good;
  bad.head_cost.pop_back();  // shape mismatch -> validate() throws
  EXPECT_THROW(lp::solve_relaxed(bad, ws), std::invalid_argument);
  EXPECT_THROW(lp::greedy_dispatch(bad, ws), std::invalid_argument);

  // The earlier entry must still be served correctly: the throwing problem
  // may not have clobbered a victim entry's value.
  const lp::MinMaxSolution& after = lp::solve_relaxed(good, ws);
  EXPECT_EQ(cold.status, after.status);
  expect_bits_eq(cold.objective, after.objective);
  expect_heads_identical(cold.heads, after.heads);
  EXPECT_EQ(greedy_cold, lp::greedy_dispatch(good, ws));
}

TEST(SolveWorkspace, ZeroRequestProblem) {
  lp::MinMaxProblem p;
  p.base_time = {0.1, 0.2};
  p.head_cost = {1e-6, 2e-6};
  p.cache_cost = {1e-13, 1e-13};
  p.mem_free = {1e9, 1e9};
  lp::SolveWorkspace ws;
  lp::MinMaxSolution cold = lp::solve_relaxed(p);
  const lp::MinMaxSolution& warm = lp::solve_relaxed(p, ws);
  EXPECT_EQ(cold.status, warm.status);
  expect_bits_eq(cold.objective, warm.objective);
  EXPECT_EQ(lp::greedy_dispatch(p), lp::greedy_dispatch(p, ws));
}

TEST(GreedyDispatchInto, ReusedBuffersMatchFreshOnes) {
  // The in-place form must be oblivious to whatever garbage (sizes AND
  // values) its buffers held from a previous, differently-shaped problem.
  Rng rng(99);
  std::vector<std::vector<int>> heads(7, std::vector<int>(11, -5));
  std::vector<double> load(13, std::numeric_limits<double>::quiet_NaN());
  std::vector<double> mem(1, 1e300);
  for (int trial = 0; trial < 30; ++trial) {
    lp::MinMaxProblem p = random_problem(rng, 2 + trial % 5, 1 + trial % 6, 1);
    lp::greedy_dispatch_into(p, heads, load, mem);
    EXPECT_EQ(heads, lp::greedy_dispatch(p));
  }
}

// --- DecodeWorkCache ------------------------------------------------------

TEST(DecodeWorkCache, RoundTripAndCounters) {
  costmodel::DecodeWorkCache cache;
  const model::ModelSpec& m = model::llama_13b();
  EXPECT_EQ(cache.find(128, 4), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  model::Work w = model::decode_attention_work(m, 128, 4);
  cache.insert(128, 4, w);
  const model::Work* hit = cache.find(128, 4);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  expect_bits_eq(hit->flops, w.flops);
  EXPECT_EQ(hit->kv_bytes, w.kv_bytes);
  EXPECT_EQ(hit->act_bytes, w.act_bytes);
  // Neighbouring keys don't alias.
  EXPECT_EQ(cache.find(128, 5), nullptr);
  EXPECT_EQ(cache.find(127, 4), nullptr);
  cache.clear();
  EXPECT_EQ(cache.find(128, 4), nullptr);
}

TEST(DecodeWorkCache, OutOfRangeKeysAreIgnoredNotStored) {
  costmodel::DecodeWorkCache cache;
  model::Work w;
  cache.insert(-1, 4, w);
  cache.insert(1, -4, w);
  cache.insert(std::int64_t{1} << 40, 4, w);  // absurd ctx: must not allocate
  EXPECT_EQ(cache.find(-1, 4), nullptr);
  EXPECT_EQ(cache.find(1, -4), nullptr);
  EXPECT_EQ(cache.find(std::int64_t{1} << 40, 4), nullptr);
}

TEST(KernelModel, MemoizedDecodeAttentionBitIdentical) {
  // The memoized overload vs the plain one, across repeated and permuted
  // context vectors (summation order is part of the contract).
  const model::ModelSpec& m = model::llama_13b();
  const hw::GpuSpec& gpu = hw::gpu_spec(hw::GpuType::kA100_80G);
  costmodel::KernelModel k;
  costmodel::DecodeWorkCache memo;
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::int64_t> ctxs;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 30));
    for (int i = 0; i < n; ++i) ctxs.push_back(rng.uniform_int(1, 400));
    const int heads = 1 + static_cast<int>(rng.uniform_int(0, 39));
    expect_bits_eq(k.decode_attention_time(gpu, m, ctxs, heads),
                   k.decode_attention_time(gpu, m, ctxs, heads, &memo));
  }
  EXPECT_GT(memo.hits(), 0u);  // repeated (ctx, heads) pairs actually hit
}

// --- ExecModel cost-cache differential ------------------------------------

class ExecCacheDifferential : public ::testing::Test {
 protected:
  ExecCacheDifferential()
      : cluster_(hw::Cluster::paper_cluster()),
        cached_(cluster_, model::llama_13b()),
        cold_(cluster_, model::llama_13b()) {
    cold_.set_cost_cache_enabled(false);
    parallel::StageConfig s0;
    s0.devices = {0, 1};
    s0.layers = 28;
    parallel::StageConfig s1;
    s1.devices = {4, 5, 6};
    s1.layers = 12;
    inst_.stages = {s0, s1};
  }

  void expect_identical_iterations() {
    Rng rng(17);
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<std::int64_t> lens;
      const int n = 1 + static_cast<int>(rng.uniform_int(0, 12));
      for (int i = 0; i < n; ++i) lens.push_back(rng.uniform_int(1, 2000));
      const bool prefill = trial % 3 == 0;
      engine::IterationTime a = cached_.iteration_time(inst_, lens, prefill);
      engine::IterationTime b = cold_.iteration_time(inst_, lens, prefill);
      ASSERT_EQ(a.stages.size(), b.stages.size());
      for (std::size_t s = 0; s < a.stages.size(); ++s) {
        expect_bits_eq(a.stages[s].dense, b.stages[s].dense);
        expect_bits_eq(a.stages[s].attention, b.stages[s].attention);
        expect_bits_eq(a.stages[s].comm_out, b.stages[s].comm_out);
      }
    }
  }

  hw::Cluster cluster_;
  engine::ExecModel cached_;
  engine::ExecModel cold_;
  parallel::InstanceConfig inst_;
};

TEST_F(ExecCacheDifferential, CachedMatchesUncachedOnHealthyCluster) {
  expect_identical_iterations();
  EXPECT_GT(cached_.cost_cache_hits(), 0u);
  EXPECT_EQ(cold_.cost_cache_hits(), 0u);
}

TEST_F(ExecCacheDifferential, ConditionOverlayInvalidatesDenseEntries) {
  expect_identical_iterations();  // warm the caches
  // Degrade a stage-0 device: cached dense times embed device speed, so a
  // stale entry would now be visibly wrong.  condition_epoch() must flush.
  cluster_.set_device_speed(0, 0.5);
  expect_identical_iterations();
  // Restore (another epoch bump -- even a reset to 1.0 must invalidate).
  cluster_.set_device_speed(0, 1.0);
  expect_identical_iterations();
}

TEST_F(ExecCacheDifferential, LinkScaleOverlayAlsoInvalidates) {
  expect_identical_iterations();
  cluster_.set_device_link_scale(4, 0.25);
  expect_identical_iterations();
}

TEST_F(ExecCacheDifferential, WideStagesBypassTheCacheCorrectly) {
  // 9 devices > kMaxCachedStageWidth: the dense cache must step aside, not
  // truncate the key.
  parallel::StageConfig wide;
  for (int i = 0; i < 9; ++i) wide.devices.push_back(i % 16);
  wide.layers = 40;
  parallel::InstanceConfig inst;
  inst.stages = {wide};
  std::vector<std::int64_t> lens{100, 200, 300};
  engine::IterationTime a = cached_.iteration_time(inst, lens, true);
  engine::IterationTime b = cold_.iteration_time(inst, lens, true);
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    expect_bits_eq(a.stages[s].dense, b.stages[s].dense);
  }
}

// --- Dispatcher: batched appends + cached aggregates ----------------------

// Mirrors test_dispatch.cc's two-stage + two-worker shape.
dispatch::DispatcherConfig dispatcher_config() {
  dispatch::DispatcherConfig cfg;
  cfg.heads = 32;
  cfg.group_size = 1;
  cfg.bytes_per_head_token_layer = 512.0;
  cfg.total_layers = 40;
  cfg.theta = 0.5;
  dispatch::StageDesc s0;
  s0.devices = {0, 1};
  s0.layers = 28;
  s0.attn = costmodel::AttnParams{2e-8, 1.0 / 1.1e12, 3e-6};
  s0.capacity = 40ll * GiB;
  dispatch::StageDesc s1;
  s1.devices = {2, 3};
  s1.layers = 12;
  s1.attn = costmodel::AttnParams{4.5e-8, 1.0 / 0.6e12, 4e-6};
  s1.capacity = 20ll * GiB;
  cfg.stages = {s0, s1};
  for (int w = 0; w < 2; ++w) {
    dispatch::WorkerDesc wd;
    wd.device = 8 + w;
    wd.attn = costmodel::AttnParams{1.1e-7, 1.0 / 0.34e12, 8e-6};
    wd.transfer = costmodel::TransferParams{1.0 / 12.5e9, 4e-5};
    wd.capacity = 10ll * GiB;
    cfg.workers.push_back(wd);
  }
  return cfg;
}

TEST(DispatcherHotPath, BatchedAppendEquivalentToLoop) {
  dispatch::Dispatcher batched(dispatcher_config());
  dispatch::Dispatcher looped(dispatcher_config());
  const std::vector<std::pair<workload::RequestId, std::int64_t>> reqs{
      {1, 500}, {2, 1200}, {3, 3000}, {4, 80}};
  ASSERT_TRUE(batched.dispatch(reqs, 0.0).has_value());
  ASSERT_TRUE(looped.dispatch(reqs, 0.0).has_value());
  const std::vector<workload::RequestId> ids{1, 2, 3, 4};
  for (int iter = 0; iter < 50; ++iter) {
    batched.append_tokens(ids);
    for (workload::RequestId id : ids) looped.append_token(id);
  }
  for (std::size_t dev = 0; dev < batched.num_logical(); ++dev) {
    expect_bits_eq(batched.device_time(dev), looped.device_time(dev));
  }
  expect_bits_eq(batched.worst_per_layer(), looped.worst_per_layer());
  expect_bits_eq(batched.ideal_per_layer(), looped.ideal_per_layer());
  expect_bits_eq(batched.attention_iteration_time(), looped.attention_iteration_time());
  for (workload::RequestId id : ids) EXPECT_EQ(batched.context(id), looped.context(id));
}

TEST(DispatcherHotPath, BatchedAppendUnknownIdThrows) {
  dispatch::Dispatcher d(dispatcher_config());
  ASSERT_TRUE(d.dispatch({{1, 500}}, 0.0).has_value());
  EXPECT_THROW(d.append_tokens({1, 7}), std::out_of_range);
}

TEST(DispatcherHotPath, InterleavedReadsSeeFreshAggregates) {
  // The aggregates cache is dirty-flagged; reads interleaved with mutations
  // must always match a freshly-built twin performing the same mutations.
  dispatch::Dispatcher d(dispatcher_config());
  dispatch::Dispatcher twin(dispatcher_config());
  ASSERT_TRUE(d.dispatch({{1, 500}, {2, 2500}}, 0.0).has_value());
  // Read between every mutation on `d`; the twin mutates first, reads once.
  (void)d.worst_per_layer();
  d.append_token(1);
  (void)d.ideal_per_layer();
  (void)d.device_time(0);
  d.append_token(2);
  (void)d.attention_iteration_time();
  d.remove(1);
  ASSERT_TRUE(twin.dispatch({{1, 500}, {2, 2500}}, 0.0).has_value());
  twin.append_token(1);
  twin.append_token(2);
  twin.remove(1);
  for (std::size_t dev = 0; dev < d.num_logical(); ++dev) {
    expect_bits_eq(d.device_time(dev), twin.device_time(dev));
  }
  expect_bits_eq(d.worst_per_layer(), twin.worst_per_layer());
  expect_bits_eq(d.ideal_per_layer(), twin.ideal_per_layer());
  EXPECT_GT(d.lp_stats().solves, 0u);
}

TEST(DispatcherHotPath, RepeatedIdealProbeIsStableAndCounted) {
  dispatch::Dispatcher d(dispatcher_config());
  ASSERT_TRUE(d.dispatch({{1, 900}, {2, 900}}, 0.0).has_value());
  const std::uint64_t solves_before = d.lp_stats().solves;
  Seconds first = d.ideal_per_layer();
  Seconds second = d.ideal_per_layer();
  expect_bits_eq(first, second);
  // Both probes went through the workspace (memoized entry points), and the
  // second, state-unchanged probe was served warm.
  EXPECT_GE(d.lp_stats().solves, solves_before + 2);
  EXPECT_GT(d.lp_stats().warm_hits, 0u);
}

}  // namespace
}  // namespace hetis
