// Unit + integration tests: the telemetry subsystem (trace recorder,
// metrics registry, audit trail) and its wiring through run_trace and the
// experiment harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/controller.h"
#include "engine/options.h"
#include "engine/registry.h"
#include "harness/experiment.h"
#include "harness/presets.h"
#include "model/llm.h"
#include "telemetry/telemetry.h"
#include "workload/scenarios.h"

namespace hetis {
namespace {

// --- registry ---

TEST(Registry, CountersGaugesAndSampling) {
  telemetry::MetricsRegistry reg;
  const int c = reg.counter("reqs");
  reg.add(c);
  reg.sample(0.0);
  // A series created after sampling started is zero back-filled.
  const int g = reg.gauge("depth");
  reg.set(g, 3);
  reg.add(c, 2);
  reg.sample(1.0);

  EXPECT_EQ(reg.counter("reqs"), c);  // create-once: same handle back
  EXPECT_EQ(reg.find("reqs"), c);
  EXPECT_EQ(reg.find("missing"), -1);
  EXPECT_EQ(reg.series_kind(c), 'c');
  EXPECT_EQ(reg.series_kind(g), 'g');
  EXPECT_DOUBLE_EQ(reg.value(c), 3.0);
  ASSERT_EQ(reg.sample_count(), 2u);
  EXPECT_EQ(reg.samples(c), (std::vector<double>{1, 3}));
  EXPECT_EQ(reg.samples(g), (std::vector<double>{0, 3}));
  Seconds at = -1;
  EXPECT_DOUBLE_EQ(reg.max_sample(g, &at), 3.0);
  EXPECT_DOUBLE_EQ(at, 1.0);

  std::ostringstream os;
  reg.write_series_csv(os);
  std::istringstream lines(os.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header, "time,reqs,depth");
  std::string row;
  std::size_t rows = 0;
  while (std::getline(lines, row)) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(Registry, LabeledSeriesName) {
  EXPECT_EQ(telemetry::MetricsRegistry::labeled("arrivals_total", "tenant", "chat"),
            "arrivals_total{tenant=chat}");
}

TEST(Registry, HistogramBucketMath) {
  telemetry::MetricsRegistry reg;
  const int h = reg.histogram("lat", {10.0, 0.1, 1.0});  // sorted internally
  for (double v : {0.05, 0.1, 0.5, 5.0, 50.0}) reg.observe(h, v);
  EXPECT_EQ(reg.series_kind(h), 'h');

  const auto snaps = reg.histograms();
  ASSERT_EQ(snaps.size(), 1u);
  const telemetry::HistogramSnapshot& s = snaps[0];
  EXPECT_EQ(s.name, "lat");
  EXPECT_EQ(s.upper_bounds, (std::vector<double>{0.1, 1.0, 10.0}));
  // Prometheus `le` convention: bounds are inclusive; the +inf bucket
  // closes at the total count.
  EXPECT_EQ(s.cumulative, (std::vector<std::uint64_t>{2, 3, 4, 5}));
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 55.65);
}

TEST(Registry, HistogramCsvRoundTrip) {
  telemetry::MetricsRegistry reg;
  const int a = reg.histogram("ttft_seconds", {0.05, 0.25, 1.0});
  for (double v : {0.01, 0.05, 0.2, 0.9, 3.0, 7.5}) reg.observe(a, v);
  reg.histogram("empty_hist", {1.0, 2.0});      // zero observations
  const int c = reg.histogram("only_inf", {});  // no finite bounds
  reg.observe(c, 42.0);

  std::ostringstream os;
  reg.write_histograms_csv(os);
  std::istringstream is(os.str());
  const auto parsed = telemetry::parse_histograms_csv(is);
  const auto original = reg.histograms();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, original[i].name);
    EXPECT_EQ(parsed[i].upper_bounds, original[i].upper_bounds);
    EXPECT_EQ(parsed[i].cumulative, original[i].cumulative);
    EXPECT_EQ(parsed[i].count, original[i].count);
    EXPECT_DOUBLE_EQ(parsed[i].sum, 0.0);  // sum is not serialized
  }
}

// --- trace recorder ---

TEST(Trace, RecorderStoresSpansAndTracks) {
  telemetry::TraceRecorder rec;
  rec.add_span(7, telemetry::SpanPhase::kQueue, 0.0, 0.5, 1, 0);
  rec.add_span(7, telemetry::SpanPhase::kPrefill, 0.5, 0.8, 1, 0);
  const int kv = rec.intern_track("kv_fill[dev0]");
  EXPECT_EQ(rec.intern_track("kv_fill[dev0]"), kv);
  rec.add_counter(kv, 1.0, 0.25);
  EXPECT_EQ(rec.span_count(), 2u);
  EXPECT_EQ(rec.counter_count(), 1u);
  ASSERT_EQ(rec.tracks().size(), 1u);
  EXPECT_EQ(rec.tracks()[0], "kv_fill[dev0]");

  std::vector<telemetry::SpanPhase> phases;
  rec.each_span([&](const telemetry::SpanEvent& ev) {
    EXPECT_EQ(ev.tid, 7);
    phases.push_back(ev.phase);
  });
  EXPECT_EQ(phases, (std::vector<telemetry::SpanPhase>{telemetry::SpanPhase::kQueue,
                                                       telemetry::SpanPhase::kPrefill}));
}

TEST(Trace, SpanPhaseNames) {
  EXPECT_STREQ(telemetry::to_string(telemetry::SpanPhase::kQueue), "queue");
  EXPECT_STREQ(telemetry::to_string(telemetry::SpanPhase::kPrefill), "prefill");
  EXPECT_STREQ(telemetry::to_string(telemetry::SpanPhase::kDecode), "decode");
  EXPECT_STREQ(telemetry::to_string(telemetry::SpanPhase::kPreempted), "preempted");
  EXPECT_STREQ(telemetry::to_string(telemetry::SpanPhase::kMigrate), "migrate");
}

// --- controlled-run integration ---

/// Minimal structural JSON validator: strings and escapes respected,
/// braces/brackets balanced and properly nested.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_str && stack.empty();
}

constexpr Seconds kHorizon = 8.0;

/// One controlled run mirroring elastic_serving: bursty trace, a churn
/// script replayed onto a mutable cluster, static policy, telemetry on.
engine::RunReport run_controlled(const std::string& engine_name, control::Churn churn,
                                 telemetry::Telemetry& telem) {
  hw::Cluster cluster = harness::cluster_by_name("paper");
  const model::ModelSpec& model = model::model_by_name("Llama-13B");
  workload::ScenarioSpec scenario =
      workload::scenario_preset(workload::Scenario::kBursty, 4.0, kHorizon, 20251116);
  const auto trace = workload::generate_scenario(scenario);

  control::ControlSpec cs;
  cs.churn = control::churn_preset(churn, kHorizon, 20251116);
  cs.policy = "static";
  cs.min_devices = 4;
  cs.horizon = kHorizon + 30.0;
  cs.slo.ttft = 2.0;
  cs.slo.tpot = 0.15;
  control::Controller controller(cs, cluster);  // mutable-cluster overload

  engine::EngineOptions options;
  if (engine_name == "hetis") {
    engine::HetisConfig cfg;
    cfg.sample_interval = 0.5;  // occupancy tracks for the trace
    cfg.sample_horizon = kHorizon;
    options.system = std::move(cfg);
  }
  auto eng = engine::make(engine_name, cluster, model, options);
  engine::RunOptions run(900.0);
  run.slo = cs.slo;
  run.on_start = controller.starter();
  run.telemetry = &telem;
  return engine::run_trace(*eng, trace, run);
}

/// Well-formedness of one request's span set: lifecycle spans are ordered
/// and non-overlapping, a queue span opens the track, decode never starts
/// before some prefill completed, and migrate spans (which nest inside the
/// lifecycle) stay within the request's observed window.
void check_request_spans(std::int64_t tid, std::vector<telemetry::SpanEvent> spans) {
  constexpr double kEps = 1e-9;
  for (const auto& ev : spans) {
    EXPECT_LE(ev.t0, ev.t1 + kEps) << "inverted span on request " << tid;
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const auto& a, const auto& b) { return a.t0 < b.t0; });
  const Seconds window_start = spans.front().t0;
  Seconds window_end = 0;
  for (const auto& ev : spans) window_end = std::max(window_end, ev.t1);

  std::vector<telemetry::SpanEvent> life;
  for (const auto& ev : spans) {
    if (ev.phase == telemetry::SpanPhase::kMigrate) {
      EXPECT_GE(ev.t0, window_start - kEps) << "migrate before arrival on request " << tid;
      EXPECT_LE(ev.t1, window_end + kEps) << "migrate past finish on request " << tid;
    } else {
      life.push_back(ev);
    }
  }
  ASSERT_FALSE(life.empty()) << "request " << tid << " has only migrate spans";
  EXPECT_EQ(life.front().phase, telemetry::SpanPhase::kQueue)
      << "request " << tid << " does not open with a queue span";
  Seconds first_prefill_done = -1;
  for (std::size_t i = 0; i < life.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(life[i].t0, life[i - 1].t1 - kEps)
          << "overlapping lifecycle spans on request " << tid;
    }
    if (life[i].phase == telemetry::SpanPhase::kPrefill && first_prefill_done < 0) {
      first_prefill_done = life[i].t1;
    }
    if (life[i].phase == telemetry::SpanPhase::kDecode) {
      ASSERT_GE(first_prefill_done, 0.0)
          << "decode without a prior prefill on request " << tid;
      EXPECT_GE(life[i].t0, first_prefill_done - kEps)
          << "decode before prefill completion on request " << tid;
    }
  }
}

TEST(Telemetry, SpanNestingWellFormedUnderChurn) {
  for (const control::Churn churn : {control::Churn::kStraggler, control::Churn::kSpotNotice}) {
    for (const std::string engine_name : {"splitwise", "hexgen", "hetis"}) {
      SCOPED_TRACE(engine_name + "/" +
                   control::to_string(control::churn_preset(churn, kHorizon, 20251116).kind));
      telemetry::Telemetry telem;
      const engine::RunReport report = run_controlled(engine_name, churn, telem);
      EXPECT_GT(report.finished, 0u);
      EXPECT_GT(telem.recorder().span_count(), 0u);

      std::map<std::int64_t, std::vector<telemetry::SpanEvent>> by_request;
      telem.recorder().each_span(
          [&](const telemetry::SpanEvent& ev) { by_request[ev.tid].push_back(ev); });
      EXPECT_GE(by_request.size(), report.finished);
      for (auto& [tid, spans] : by_request) check_request_spans(tid, std::move(spans));
    }
  }
}

TEST(Telemetry, AuditTrailRecordsReplanWithSignals) {
  telemetry::Telemetry telem;
  run_controlled("hetis", control::Churn::kStraggler, telem);
  const telemetry::AuditTrail& audit = telem.audit();
  ASSERT_GE(audit.size(), 1u);
  EXPECT_GE(audit.replans(), 1u);

  bool saw_straggler = false;
  for (const telemetry::AuditRecord& rec : audit.records()) {
    EXPECT_TRUE(rec.action == "redeploy" || rec.action == "replan_in_place" ||
                rec.action == "evacuate")
        << rec.action;
    EXPECT_FALSE(rec.trigger.empty());
    EXPECT_GE(rec.signals.now, 0.0);
    EXPECT_FALSE(rec.devices_before.empty());
    EXPECT_FALSE(rec.devices_after.empty());
    if (rec.trigger == "straggler_crossing") {
      saw_straggler = true;
      EXPECT_TRUE(rec.forced);
      EXPECT_EQ(rec.action, "replan_in_place");
      EXPECT_GE(rec.device, 0);
      // Hetis replans through the Parallelizer, so the record carries the
      // planner tier's diagnostics and plan digests.
      EXPECT_TRUE(rec.has_diagnostics);
      EXPECT_FALSE(rec.plan_before.empty());
      EXPECT_FALSE(rec.plan_after.empty());
      EXPECT_EQ(rec.signals.degraded_devices, 1);
    }
  }
  EXPECT_TRUE(saw_straggler);

  std::ostringstream os;
  audit.write_json(os);
  EXPECT_TRUE(json_well_formed(os.str()));
  EXPECT_NE(os.str().find("\"trigger\":\"straggler_crossing\""), std::string::npos);
}

TEST(Telemetry, ChromeTraceWellFormedWithOccupancyTracks) {
  telemetry::Telemetry telem;
  run_controlled("hetis", control::Churn::kStraggler, telem);
  std::ostringstream os;
  telem.write_chrome_trace(os);
  const std::string doc = os.str();
  EXPECT_TRUE(json_well_formed(doc));
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"prefill\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"decode\""), std::string::npos);
  // Per-device occupancy counters (Hetis usage sampling was on).
  EXPECT_GT(telem.recorder().counter_count(), 0u);
  EXPECT_NE(doc.find("kv_fill[dev"), std::string::npos);
  // Audit instants ride on the control track.
  EXPECT_NE(doc.find("straggler_crossing"), std::string::npos);

  // Five-line digest: 4 separators, headline fields present.
  const std::string digest = telem.summary();
  EXPECT_EQ(std::count(digest.begin(), digest.end(), '\n'), 4);
  EXPECT_NE(digest.find("replans:"), std::string::npos);
  EXPECT_NE(digest.find("worst queue depth:"), std::string::npos);
}

TEST(Telemetry, ArtifactPaths) {
  const auto paths = telemetry::Telemetry::artifact_paths("out/run.trace.json");
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "out/run.trace.json");
  EXPECT_EQ(paths[1], "out/run.metrics.csv");
  EXPECT_EQ(paths[2], "out/run.audit.json");
}

// --- harness integration ---

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << p;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

harness::ExperimentSpec traced_spec(const std::string& dir, int jobs) {
  harness::ExperimentSpec spec;
  spec.name = "telemetry_sweep";
  spec.horizon = 6.0;
  engine::SloSpec slo;
  slo.ttft = 2.0;
  slo.tpot = 0.15;
  spec.run.slo = slo;
  spec.add_scenario(
      workload::scenario_preset(workload::Scenario::kBursty, 4.0, spec.horizon, spec.seed));
  control::ControlSpec cs;
  cs.policy = "static";
  cs.min_devices = 4;
  cs.slo = slo;
  cs.churn = control::churn_preset(control::Churn::kStraggler, spec.horizon, spec.seed);
  spec.set_control(cs);
  spec.trace_dir = dir;
  spec.jobs = jobs;
  return spec;
}

TEST(Harness, TraceArtifactsByteIdenticalAcrossJobsAndRowsUnperturbed) {
  const std::filesystem::path base = std::filesystem::path(::testing::TempDir()) / "hetis_tm";
  const std::filesystem::path dir1 = base / "jobs1";
  const std::filesystem::path dir8 = base / "jobs8";
  std::filesystem::remove_all(base);

  const auto rows1 = harness::run_sweep(traced_spec(dir1.string(), 1));
  const auto rows8 = harness::run_sweep(traced_spec(dir8.string(), 8));
  harness::ExperimentSpec untraced = traced_spec("", 8);
  const auto rows_off = harness::run_sweep(untraced);

  // Rows: identical bytes at jobs 1 vs 8, and telemetry never perturbs
  // serving results.
  ASSERT_EQ(rows1.size(), rows8.size());
  ASSERT_EQ(rows1.size(), rows_off.size());
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_EQ(harness::to_csv_row(rows1[i]), harness::to_csv_row(rows8[i]));
    EXPECT_EQ(harness::to_csv_row(rows1[i]), harness::to_csv_row(rows_off[i]));
  }

  // Artifacts: same file set, byte-identical content.
  std::vector<std::string> names1, names8;
  for (const auto& e : std::filesystem::directory_iterator(dir1)) {
    names1.push_back(e.path().filename().string());
  }
  for (const auto& e : std::filesystem::directory_iterator(dir8)) {
    names8.push_back(e.path().filename().string());
  }
  std::sort(names1.begin(), names1.end());
  std::sort(names8.begin(), names8.end());
  ASSERT_EQ(names1, names8);
  // 3 engines x (trace + metrics + audit).
  EXPECT_EQ(names1.size(), 9u);
  for (const std::string& name : names1) {
    const std::string a = slurp(dir1 / name);
    EXPECT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, slurp(dir8 / name)) << name << " differs between jobs=1 and jobs=8";
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      EXPECT_TRUE(json_well_formed(a)) << name;
    }
  }

  // The metrics CSV's histogram block parses back (header + bucket rows).
  for (const std::string& name : names1) {
    if (name.find(".metrics.csv") == std::string::npos) continue;
    std::istringstream is(slurp(dir1 / name));
    std::string line;
    while (std::getline(is, line) && line != "histogram,le,count") {
    }
    ASSERT_EQ(line, "histogram,le,count") << name << " lacks a histogram block";
    std::istringstream block("histogram,le,count\n" +
                             std::string(std::istreambuf_iterator<char>(is), {}));
    const auto snaps = telemetry::parse_histograms_csv(block);
    EXPECT_GE(snaps.size(), 3u);  // ttft, e2e, tpot at minimum
    for (const auto& s : snaps) {
      ASSERT_EQ(s.cumulative.size(), s.upper_bounds.size() + 1);
      EXPECT_EQ(s.cumulative.back(), s.count);
    }
  }
  std::filesystem::remove_all(base);
}

TEST(Harness, SharedTelemetryValidation) {
  telemetry::Telemetry telem;
  harness::ExperimentSpec spec;
  spec.run.telemetry = &telem;
  spec.jobs = 8;
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
  spec.jobs = 1;
  spec.trace_dir = "somewhere";
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
  spec.run.telemetry = nullptr;
  spec.telemetry_interval = 0;
  EXPECT_THROW(harness::run_sweep(spec), std::invalid_argument);
}

}  // namespace
}  // namespace hetis
