// Unit tests: GPU catalog and cluster topology.
#include <gtest/gtest.h>

#include <set>

#include "hw/gpu.h"
#include "hw/topology.h"

namespace hetis::hw {
namespace {

TEST(GpuCatalog, ContainsPaperDevices) {
  EXPECT_EQ(gpu_spec(GpuType::kA100_80G).name, "A100");
  EXPECT_EQ(gpu_spec(GpuType::kRTX3090).name, "3090");
  EXPECT_EQ(gpu_spec(GpuType::kP100).name, "P100");
}

TEST(GpuCatalog, PaperMemoryCapacities) {
  // Table 1: A100 80 GB, 3090 24 GB, P100 12 GB.
  EXPECT_EQ(gpu_spec(GpuType::kA100_80G).memory, 80 * GiB);
  EXPECT_EQ(gpu_spec(GpuType::kRTX3090).memory, 24 * GiB);
  EXPECT_EQ(gpu_spec(GpuType::kP100).memory, 12 * GiB);
}

TEST(GpuCatalog, MemoryRatiosMatchPaper) {
  // Paper §2.2: A100 has 3.33x and 6.67x more memory than 3090 / P100.
  double a = static_cast<double>(gpu_spec(GpuType::kA100_80G).memory);
  EXPECT_NEAR(a / gpu_spec(GpuType::kRTX3090).memory, 3.33, 0.01);
  EXPECT_NEAR(a / gpu_spec(GpuType::kP100).memory, 6.67, 0.01);
}

TEST(GpuCatalog, EffectiveRatesPositive) {
  for (const auto& spec : gpu_catalog()) {
    EXPECT_GT(spec.eff_flops(), 0) << spec.name;
    EXPECT_GT(spec.eff_dense_bw(), 0) << spec.name;
    EXPECT_GT(spec.eff_attn_bw(), 0) << spec.name;
    EXPECT_GT(spec.kernel_overhead, 0) << spec.name;
    EXPECT_GT(spec.attn_head_cost, 0) << spec.name;
  }
}

TEST(GpuCatalog, PowerOrdering) {
  // The dense compute ordering that drives Parallelizer pruning.
  EXPECT_GT(gpu_spec(GpuType::kA100_80G).compute_power(),
            gpu_spec(GpuType::kRTX3090).compute_power());
  EXPECT_GT(gpu_spec(GpuType::kRTX3090).compute_power(),
            gpu_spec(GpuType::kP100).compute_power());
}

TEST(GpuCatalog, DensePrefillGapMatchesPaper) {
  // Table 1 prefill: A100 is ~2.45x faster than 3090 and ~24.5x than P100.
  double a = gpu_spec(GpuType::kA100_80G).eff_flops();
  EXPECT_NEAR(a / gpu_spec(GpuType::kRTX3090).eff_flops(), 2.45, 0.35);
  EXPECT_NEAR(a / gpu_spec(GpuType::kP100).eff_flops(), 24.5, 4.0);
}

TEST(GpuCatalog, AttentionGapMuchSmallerThanDenseGap) {
  // The core heterogeneity observation (Fig. 2): the P100 attention gap is
  // ~3x while its dense gap is >20x.
  const GpuSpec& a100 = gpu_spec(GpuType::kA100_80G);
  const GpuSpec& p100 = gpu_spec(GpuType::kP100);
  double attn_gap = a100.eff_attn_bw() / p100.eff_attn_bw();
  double dense_gap = a100.eff_flops() / p100.eff_flops();
  EXPECT_LT(attn_gap, 5.0);
  EXPECT_GT(dense_gap, 15.0);
}

TEST(GpuCatalog, UnknownTypeThrows) {
  EXPECT_THROW(gpu_spec(static_cast<GpuType>(250)), std::out_of_range);
}

TEST(Cluster, PaperClusterShape) {
  Cluster c = Cluster::paper_cluster();
  EXPECT_EQ(c.num_devices(), 12);
  EXPECT_EQ(c.hosts().size(), 4u);
  EXPECT_EQ(c.devices_of_type(GpuType::kA100_80G).size(), 4u);
  EXPECT_EQ(c.devices_of_type(GpuType::kRTX3090).size(), 4u);
  EXPECT_EQ(c.devices_of_type(GpuType::kP100).size(), 4u);
}

TEST(Cluster, AblationClusterShape) {
  Cluster c = Cluster::ablation_cluster();
  EXPECT_EQ(c.num_devices(), 3);
  EXPECT_EQ(c.devices_of_type(GpuType::kA100_80G).size(), 1u);
  EXPECT_EQ(c.devices_of_type(GpuType::kRTX3090).size(), 2u);
}

TEST(Cluster, DeviceIdsAreContiguous) {
  Cluster c = Cluster::paper_cluster();
  for (int i = 0; i < c.num_devices(); ++i) {
    EXPECT_EQ(c.device(i).id, i);
  }
}

TEST(Cluster, HostAssignment) {
  Cluster c = Cluster::paper_cluster();
  // A100s are all on host 0; the two 3090 pairs on hosts 1 and 2.
  for (int id : c.devices_of_type(GpuType::kA100_80G)) {
    EXPECT_EQ(c.device(id).host, 0);
  }
  auto t3090 = c.devices_of_type(GpuType::kRTX3090);
  EXPECT_TRUE(c.same_host(t3090[0], t3090[1]));
  EXPECT_FALSE(c.same_host(t3090[1], t3090[2]));
}

TEST(Cluster, LinkSelection) {
  Cluster c = Cluster::paper_cluster();
  Link intra = c.link(0, 1);   // both A100s, host 0
  Link inter = c.link(0, 11);  // A100 <-> P100 across hosts
  EXPECT_GT(intra.bandwidth, inter.bandwidth);
  EXPECT_LT(intra.latency, inter.latency);
}

TEST(Cluster, SelfLinkIsFree) {
  Cluster c = Cluster::paper_cluster();
  Link self = c.link(3, 3);
  EXPECT_DOUBLE_EQ(self.transfer_time(1 * GiB), 0.0);
}

TEST(Cluster, LinkTransferTimeFormula) {
  Link l{micros(20), 12.5e9};
  EXPECT_NEAR(l.transfer_time(12'500'000'000), 1.0 + 20e-6, 1e-9);
  EXPECT_NEAR(l.transfer_time(0), 20e-6, 1e-12);
}

TEST(Cluster, TypesByPowerDesc) {
  Cluster c = Cluster::paper_cluster();
  auto types = c.types_by_power_desc();
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], GpuType::kA100_80G);
  EXPECT_EQ(types[1], GpuType::kRTX3090);
  EXPECT_EQ(types[2], GpuType::kP100);
}

TEST(Cluster, SyntheticClusterScale) {
  Cluster c = Cluster::synthetic_cluster(
      {GpuType::kA100_80G, GpuType::kV100_32G, GpuType::kT4}, 32);
  EXPECT_EQ(c.num_devices(), 96);
  EXPECT_EQ(c.devices_of_type(GpuType::kV100_32G).size(), 32u);
  // 4 GPUs per host.
  EXPECT_EQ(c.hosts().size(), 24u);
}

TEST(Cluster, TotalMemory) {
  Cluster c = Cluster::ablation_cluster();
  EXPECT_EQ(c.total_memory(), 80 * GiB + 2 * 24 * GiB);
}

TEST(Cluster, MixedHost) {
  Cluster c;
  c.add_host("mixed", {GpuType::kA100_80G, GpuType::kT4});
  EXPECT_EQ(c.num_devices(), 2);
  EXPECT_TRUE(c.same_host(0, 1));
  EXPECT_NE(c.device(0).type, c.device(1).type);
}

TEST(Cluster, ToStringMentionsHosts) {
  Cluster c = Cluster::paper_cluster();
  std::string s = c.to_string();
  EXPECT_NE(s.find("host-a100"), std::string::npos);
  EXPECT_NE(s.find("P100"), std::string::npos);
}

TEST(Cluster, SubclusterPreservesStructureAndMapsIds) {
  Cluster c = Cluster::paper_cluster();
  // Drop the last two P100s (ids 10, 11) and one 3090 (id 5).
  std::vector<int> keep{0, 1, 2, 3, 4, 6, 7, 8, 9};
  std::vector<int> original;
  Cluster sub = c.subcluster(keep, &original);
  ASSERT_EQ(sub.num_devices(), 9);
  ASSERT_EQ(original.size(), 9u);
  for (int i = 0; i < sub.num_devices(); ++i) {
    // Renumbered contiguously; type and host-mate relations preserved.
    EXPECT_EQ(sub.device(i).id, i);
    EXPECT_EQ(sub.device(i).type, c.device(original[static_cast<std::size_t>(i)]).type);
  }
  // Host structure: devices 4 (3090 host a) and 5 (= original 6, host b)
  // must be on DIFFERENT hosts, exactly like their originals.
  EXPECT_FALSE(sub.same_host(4, 5));
  EXPECT_TRUE(sub.same_host(0, 3));
  // Fabric parameters carry over.
  EXPECT_EQ(sub.intra_host_link().bandwidth, c.intra_host_link().bandwidth);
  // Hosts that lose every device are dropped.
  Cluster a100_only = c.subcluster({0, 1, 2, 3});
  EXPECT_EQ(a100_only.hosts().size(), 1u);
}

TEST(Cluster, SubclusterRejectsBadDeviceSets) {
  Cluster c = Cluster::paper_cluster();
  EXPECT_THROW(c.subcluster({}), std::invalid_argument);
  EXPECT_THROW(c.subcluster({0, 0}), std::invalid_argument);
  EXPECT_THROW(c.subcluster({0, 99}), std::invalid_argument);
  EXPECT_THROW(c.subcluster({-1}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Condition overlay (degradation)
// ---------------------------------------------------------------------------

TEST(ConditionOverlay, HealthyByDefaultAndRestorable) {
  Cluster c = Cluster::paper_cluster();
  EXPECT_FALSE(c.degraded());
  for (const auto& d : c.devices()) {
    EXPECT_DOUBLE_EQ(c.device_speed(d.id), 1.0);
    EXPECT_DOUBLE_EQ(c.device_link_scale(d.id), 1.0);
  }
  c.set_device_speed(0, 0.35);
  EXPECT_TRUE(c.degraded());
  EXPECT_DOUBLE_EQ(c.device_speed(0), 0.35);
  EXPECT_DOUBLE_EQ(c.device_speed(1), 1.0);  // sparse: only id 0 touched
  // Setting 1.0 erases the entry entirely (back to the healthy fast path).
  c.set_device_speed(0, 1.0);
  EXPECT_FALSE(c.degraded());
  EXPECT_DOUBLE_EQ(c.device_speed(0), 1.0);
}

TEST(ConditionOverlay, ValidatesRatioAndId) {
  Cluster c = Cluster::paper_cluster();
  EXPECT_THROW(c.set_device_speed(0, 0.0), std::invalid_argument);
  EXPECT_THROW(c.set_device_speed(0, -0.5), std::invalid_argument);
  EXPECT_THROW(c.set_device_speed(0, 1.5), std::invalid_argument);
  EXPECT_THROW(c.set_device_speed(99, 0.5), std::invalid_argument);
  EXPECT_THROW(c.set_device_link_scale(0, 0.0), std::invalid_argument);
  EXPECT_THROW(c.set_device_link_scale(-1, 0.5), std::invalid_argument);
}

TEST(ConditionOverlay, LinkScaleGatesBandwidthByWorseEndpoint) {
  Cluster c = Cluster::paper_cluster();
  const Link healthy = c.link(0, 4);
  c.set_device_link_scale(0, 0.25);
  const Link flaky = c.link(0, 4);
  EXPECT_DOUBLE_EQ(flaky.bandwidth, 0.25 * healthy.bandwidth);
  EXPECT_DOUBLE_EQ(flaky.latency, healthy.latency);  // latency untouched
  // The worse endpoint governs: scaling the far side further drops it.
  c.set_device_link_scale(4, 0.1);
  EXPECT_DOUBLE_EQ(c.link(0, 4).bandwidth, 0.1 * healthy.bandwidth);
  // Links between two healthy devices are untouched.
  const Cluster pristine = Cluster::paper_cluster();
  EXPECT_DOUBLE_EQ(c.link(1, 5).bandwidth, pristine.link(1, 5).bandwidth);
  EXPECT_DOUBLE_EQ(c.link(2, 3).bandwidth, pristine.link(2, 3).bandwidth);
}

TEST(ConditionOverlay, SubclusterCarriesOverlayOntoRenumberedIds) {
  Cluster c = Cluster::paper_cluster();
  c.set_device_speed(3, 0.35);      // kept, renumbers to 2 below
  c.set_device_speed(1, 0.5);       // dropped with its entry
  c.set_device_link_scale(8, 0.25); // kept, renumbers to 3
  std::vector<int> original;
  Cluster sub = c.subcluster({0, 2, 3, 8}, &original);
  EXPECT_TRUE(sub.degraded());
  EXPECT_DOUBLE_EQ(sub.device_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(sub.device_speed(2), 0.35);
  EXPECT_DOUBLE_EQ(sub.device_link_scale(3), 0.25);
  // The dropped device's entry does not leak onto a renumbered id.
  EXPECT_DOUBLE_EQ(sub.device_speed(1), 1.0);
  // A healthy selection of a degraded cluster is itself healthy.
  EXPECT_FALSE(c.subcluster({0, 2}).degraded());
}

}  // namespace
}  // namespace hetis::hw
