// Property sweeps across randomized heterogeneous clusters: the
// Parallelizer must always emit well-formed plans, every engine must drain
// arbitrary workloads, and memory accounting must balance to zero.
#include <gtest/gtest.h>

#include <set>

#include "baselines/hexgen.h"
#include "baselines/splitwise.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "hetis/hetis_engine.h"
#include "model/llm.h"
#include "parallel/parallelizer.h"
#include "workload/trace.h"

namespace hetis {
namespace {

/// Builds a random 2-3-type cluster with per-type counts in {2, 4}.
hw::Cluster random_cluster(Rng& rng) {
  static const std::vector<hw::GpuType> kPool{
      hw::GpuType::kH100_80G, hw::GpuType::kA100_80G, hw::GpuType::kA6000,
      hw::GpuType::kV100_32G, hw::GpuType::kRTX3090, hw::GpuType::kL4};
  std::set<std::size_t> picked;
  std::size_t n_types = 2 + static_cast<std::size_t>(rng.uniform_int(0, 1));
  while (picked.size() < n_types) {
    picked.insert(static_cast<std::size_t>(rng.uniform_int(0, kPool.size() - 1)));
  }
  hw::Cluster c;
  int host = 0;
  for (std::size_t idx : picked) {
    int count = rng.bernoulli(0.5) ? 2 : 4;
    c.add_host("h" + std::to_string(host++), kPool[idx], count);
  }
  return c;
}

const model::ModelSpec& random_model(Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return model::llama2_7b();
    case 1: return model::llama_13b();
    default: return model::opt_13b();
  }
}

class RandomClusterSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomClusterSweep, ParallelizerPlansAreWellFormed) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  hw::Cluster cluster = random_cluster(rng);
  const model::ModelSpec& m = random_model(rng);
  parallel::Parallelizer par(cluster, m);
  parallel::WorkloadProfile profile;
  profile.decode_batch = 32;
  parallel::ParallelPlan plan = par.plan(profile);

  ASSERT_FALSE(plan.instances.empty());
  std::set<int> seen;
  for (const auto& inst : plan.instances) {
    EXPECT_EQ(inst.total_layers(), m.layers);
    for (const auto& s : inst.stages) {
      EXPECT_GT(s.layers, 0);
      ASSERT_FALSE(s.devices.empty());
      for (int dev : s.devices) {
        EXPECT_TRUE(seen.insert(dev).second) << "device reused: " << dev;
        EXPECT_EQ(cluster.device(dev).type, cluster.device(s.devices.front()).type);
      }
    }
    for (int dev : inst.attention_workers) {
      EXPECT_TRUE(seen.insert(dev).second);
    }
  }
}

TEST_P(RandomClusterSweep, HetisDrainsRandomWorkload) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  hw::Cluster cluster = random_cluster(rng);
  const model::ModelSpec& m = random_model(rng);
  core::HetisOptions opts;
  opts.workload.decode_batch = 32;
  core::HetisEngine eng(cluster, m, opts);

  workload::TraceOptions topts;
  topts.dataset = rng.bernoulli(0.5) ? workload::Dataset::kShareGPT
                                     : workload::Dataset::kHumanEval;
  topts.rate = rng.uniform(1.0, 4.0);
  topts.horizon = 10.0;
  topts.seed = static_cast<std::uint64_t>(GetParam());
  auto trace = workload::build_trace(topts);
  engine::RunReport rep = engine::run_trace(eng, trace, engine::RunOptions(1800.0));
  EXPECT_EQ(rep.finished, trace.size());
  // Latency sanity: positive, and bounded by something absurd.
  if (rep.finished > 0) {
    EXPECT_GT(rep.norm_latency_mean, 0.0);
    EXPECT_LT(rep.norm_latency_mean, 30.0);
  }
}

TEST_P(RandomClusterSweep, BaselinesDrainRandomWorkload) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709);
  hw::Cluster cluster = random_cluster(rng);
  const model::ModelSpec& m = model::llama2_7b();  // fits everywhere
  workload::TraceOptions topts;
  topts.dataset = workload::Dataset::kShareGPT;
  topts.rate = 2.0;
  topts.horizon = 8.0;
  topts.seed = static_cast<std::uint64_t>(GetParam()) + 31;
  auto trace = workload::build_trace(topts);

  baselines::HexgenEngine hex(cluster, m);
  EXPECT_EQ(engine::run_trace(hex, trace, engine::RunOptions(1800.0)).finished, trace.size());
  baselines::SplitwiseEngine sw(cluster, m);
  EXPECT_EQ(engine::run_trace(sw, trace, engine::RunOptions(1800.0)).finished, trace.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomClusterSweep, ::testing::Range(1, 13));

// Determinism must hold across random configurations too.
class DeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismSweep, IdenticalRunsBitEqual) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863);
  hw::Cluster cluster = random_cluster(rng);
  workload::TraceOptions topts;
  topts.rate = 3.0;
  topts.horizon = 6.0;
  topts.seed = static_cast<std::uint64_t>(GetParam());
  auto trace = workload::build_trace(topts);

  auto run_once = [&] {
    core::HetisOptions opts;
    opts.workload.decode_batch = 32;
    core::HetisEngine eng(cluster, model::llama2_7b(), opts);
    return engine::run_trace(eng, trace, engine::RunOptions(1800.0));
  };
  engine::RunReport a = run_once();
  engine::RunReport b = run_once();
  EXPECT_DOUBLE_EQ(a.norm_latency_mean, b.norm_latency_mean);
  EXPECT_DOUBLE_EQ(a.ttft_p95, b.ttft_p95);
  EXPECT_DOUBLE_EQ(a.tpot_p95, b.tpot_p95);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace hetis
